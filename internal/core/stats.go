package core

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes the net the way Table 2 of the paper does: node counts
// per layer, primitive counts per domain, relation counts per edge kind, and
// average degrees between layers.
type Stats struct {
	Nodes           int
	Edges           int
	PerKind         map[string]int
	PrimitivesByDom map[string]int
	EdgesByKind     map[string]int

	IsAPrimitive int // isA relations in the primitive layer
	IsAEConcept  int // isA relations in the e-commerce concept layer

	AvgPrimitivesPerItem float64
	AvgEConceptsPerItem  float64
	AvgItemsPerEConcept  float64
	AvgPrimsPerEConcept  float64
}

// ComputeStats scans the net once and fills a Stats.
func (n *Net) ComputeStats() Stats {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s := Stats{
		Nodes:           len(n.nodes),
		Edges:           n.edges,
		PerKind:         make(map[string]int),
		PrimitivesByDom: make(map[string]int),
		EdgesByKind:     make(map[string]int),
	}
	items, econcepts := 0, 0
	var itemPrim, itemEcpt, ecptPrim int
	for id, nd := range n.nodes {
		s.PerKind[nd.Kind.String()]++
		if nd.Kind == KindPrimitive {
			s.PrimitivesByDom[nd.Domain]++
		}
		if nd.Kind == KindItem {
			items++
		}
		if nd.Kind == KindEConcept {
			econcepts++
		}
		for _, he := range n.outAdj[id] {
			s.EdgesByKind[he.Kind.String()]++
			switch he.Kind {
			case EdgeIsA:
				switch nd.Kind {
				case KindPrimitive:
					s.IsAPrimitive++
				case KindEConcept:
					s.IsAEConcept++
				}
			case EdgeItemPrimitive:
				itemPrim++
			case EdgeItemEConcept:
				itemEcpt++
			case EdgeInterpretedBy:
				ecptPrim++
			}
		}
	}
	if items > 0 {
		s.AvgPrimitivesPerItem = float64(itemPrim) / float64(items)
		s.AvgEConceptsPerItem = float64(itemEcpt) / float64(items)
	}
	if econcepts > 0 {
		s.AvgItemsPerEConcept = float64(itemEcpt) / float64(econcepts)
		s.AvgPrimsPerEConcept = float64(ecptPrim) / float64(econcepts)
	}
	return s
}

// Render formats the stats as a Table-2-style text block.
func (s Stats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overall\n")
	fmt.Fprintf(&b, "  # Primitive concepts   %d\n", s.PerKind["primitive"])
	fmt.Fprintf(&b, "  # E-commerce concepts  %d\n", s.PerKind["econcept"])
	fmt.Fprintf(&b, "  # Taxonomy classes     %d\n", s.PerKind["class"])
	fmt.Fprintf(&b, "  # Items                %d\n", s.PerKind["item"])
	fmt.Fprintf(&b, "  # Relations            %d\n", s.Edges)
	fmt.Fprintf(&b, "Primitive concepts by domain\n")
	doms := make([]string, 0, len(s.PrimitivesByDom))
	for d := range s.PrimitivesByDom {
		doms = append(doms, d)
	}
	sort.Strings(doms)
	for _, d := range doms {
		fmt.Fprintf(&b, "  # %-14s %d\n", d, s.PrimitivesByDom[d])
	}
	fmt.Fprintf(&b, "Relations\n")
	fmt.Fprintf(&b, "  # IsA in primitive concepts    %d\n", s.IsAPrimitive)
	fmt.Fprintf(&b, "  # IsA in e-commerce concepts   %d\n", s.IsAEConcept)
	fmt.Fprintf(&b, "  # Item - Primitive concepts    %d\n", s.EdgesByKind["itemPrimitive"])
	fmt.Fprintf(&b, "  # Item - E-commerce concepts   %d\n", s.EdgesByKind["itemEConcept"])
	fmt.Fprintf(&b, "  # E-commerce - Primitive cpts  %d\n", s.EdgesByKind["interpretedBy"])
	fmt.Fprintf(&b, "Degrees\n")
	fmt.Fprintf(&b, "  avg primitive concepts per item   %.1f\n", s.AvgPrimitivesPerItem)
	fmt.Fprintf(&b, "  avg e-commerce concepts per item  %.1f\n", s.AvgEConceptsPerItem)
	fmt.Fprintf(&b, "  avg items per e-commerce concept  %.1f\n", s.AvgItemsPerEConcept)
	return b.String()
}
