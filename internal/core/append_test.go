package core

import (
	"fmt"
	"math/rand"
	"testing"

	"alicoco/internal/raceflag"
)

// readers returns both Reader implementations over the same random net, so
// append-vs-allocate equivalence is proven for the locked store and the
// frozen snapshot alike.
func readers(t *testing.T, seed int64) map[string]Reader {
	n := buildRandomNet(t, seed)
	return map[string]Reader{"locked": n, "frozen": n.Freeze()}
}

// TestAppendVariantsMatchAllocating proves every Append* method returns
// exactly what its allocate-and-return counterpart does, both onto a nil
// dst and appended after an existing prefix (which must survive untouched).
// Run under -race in CI, with reused buffers shared across iterations the
// way a serving loop would hold them.
func TestAppendVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	prefixIDs := []NodeID{-7, -8, -9}
	prefixEdges := []HalfEdge{{Peer: -7, Kind: EdgeIsA}}
	var idBuf []NodeID
	var edgeBuf []HalfEdge
	for seed := int64(1); seed <= 10; seed++ {
		for store, r := range readers(t, seed) {
			nn := r.NumNodes()
			checkIDs := func(what string, id NodeID, got, want []NodeID) {
				t.Helper()
				if len(got) != len(prefixIDs)+len(want) {
					t.Fatalf("seed %d %s: %s(%d) appended %d ids, want %d",
						seed, store, what, id, len(got)-len(prefixIDs), len(want))
				}
				for i, p := range prefixIDs {
					if got[i] != p {
						t.Fatalf("seed %d %s: %s(%d) clobbered prefix", seed, store, what, id)
					}
				}
				for i, w := range want {
					if got[len(prefixIDs)+i] != w {
						t.Fatalf("seed %d %s: %s(%d) element %d = %d, want %d",
							seed, store, what, id, i, got[len(prefixIDs)+i], w)
					}
				}
			}
			checkEdges := func(what string, id NodeID, got, want []HalfEdge) {
				t.Helper()
				if len(got) != len(prefixEdges)+len(want) {
					t.Fatalf("seed %d %s: %s(%d) appended %d edges, want %d",
						seed, store, what, id, len(got)-len(prefixEdges), len(want))
				}
				for i, p := range prefixEdges {
					if got[i] != p {
						t.Fatalf("seed %d %s: %s(%d) clobbered prefix", seed, store, what, id)
					}
				}
				for i := range want {
					// Posting ties may order arbitrarily between calls on the
					// locked store is not true — sortHalfEdgesByWeight is
					// total (weight, then peer) — so exact equality holds.
					if got[len(prefixEdges)+i] != want[i] {
						t.Fatalf("seed %d %s: %s(%d) element %d differs", seed, store, what, id, i)
					}
				}
			}
			for trial := 0; trial < 40; trial++ {
				id := NodeID(rng.Intn(nn+4) - 2) // includes invalid ids
				depth := rng.Intn(4)             // 0 = unlimited
				limit := rng.Intn(5) - 1         // includes <= 0
				idBuf = append(idBuf[:0], prefixIDs...)
				checkIDs("AppendAncestors", id, r.AppendAncestors(idBuf, id, depth), r.Ancestors(id, depth))
				idBuf = append(idBuf[:0], prefixIDs...)
				checkIDs("AppendDescendants", id, r.AppendDescendants(idBuf, id, depth), r.Descendants(id, depth))
				edgeBuf = append(edgeBuf[:0], prefixEdges...)
				checkEdges("AppendItemsForEConcept", id, r.AppendItemsForEConcept(edgeBuf, id, limit), r.ItemsForEConcept(id, limit))
				edgeBuf = append(edgeBuf[:0], prefixEdges...)
				checkEdges("AppendEConceptsForItem", id, r.AppendEConceptsForItem(edgeBuf, id, limit), r.EConceptsForItem(id, limit))
				if int(id) >= 0 && int(id) < nn {
					nd, _ := r.Node(id)
					idBuf = append(idBuf[:0], prefixIDs...)
					checkIDs("AppendFindByNameKind", id,
						r.AppendFindByNameKind(idBuf, nd.Name, nd.Kind), r.FindByNameKind(nd.Name, nd.Kind))
					if got, want := r.FirstByNameKindBytes([]byte(nd.Name), nd.Kind), r.FirstByNameKind(nd.Name, nd.Kind); got != want {
						t.Fatalf("seed %d %s: FirstByNameKindBytes(%q) = %d, want %d", seed, store, nd.Name, got, want)
					}
				}
			}
			if r.FirstByNameKindBytes([]byte("no such node"), KindItem) != InvalidNode {
				t.Fatalf("seed %d %s: FirstByNameKindBytes on unknown name", seed, store)
			}
		}
	}
}

// TestNetFindByNameSharedViewStable pins the contract that lets the locked
// store hand out its index slice without copying: ids already visible
// through a returned view never change, even as AddNode keeps growing the
// same name's entry.
func TestNetFindByNameSharedViewStable(t *testing.T) {
	n := NewNet()
	first := n.AddNode(KindPrimitive, "shared", "D0")
	view := n.FindByName("shared")
	if len(view) != 1 || view[0] != first {
		t.Fatalf("initial view %v", view)
	}
	for i := 0; i < 64; i++ {
		n.AddNode(KindPrimitive, "shared", fmt.Sprintf("D%d", i+1))
		if view[0] != first {
			t.Fatalf("view mutated after %d appends", i+1)
		}
	}
	if got := len(n.FindByName("shared")); got != 65 {
		t.Fatalf("index has %d entries, want 65", got)
	}
}

// --- zero-allocation guards --------------------------------------------
//
// These run in CI (see the alloc-guards step in ci.yml) so the property the
// serving path is built on — frozen reads and buffer-reusing traversals
// allocate nothing — cannot silently regress.

func zeroAllocs(t *testing.T, what string, fn func()) {
	t.Helper()
	if raceflag.Enabled {
		// The race detector makes sync.Pool drop items at random to widen
		// its race coverage, so pooled paths legitimately allocate under
		// -race. CI runs these guards in a dedicated non-race step.
		t.Skip("allocation guards are not meaningful under -race")
	}
	if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
		t.Fatalf("%s allocates %.1f times per op, want 0", what, allocs)
	}
}

func TestFrozenReadsZeroAllocs(t *testing.T) {
	n := buildRandomNet(t, 5)
	f := n.Freeze()
	var ec, item NodeID = InvalidNode, InvalidNode
	if ids := f.NodesOfKind(KindEConcept); len(ids) > 0 {
		ec = ids[0]
	}
	if ids := f.NodesOfKind(KindItem); len(ids) > 0 {
		item = ids[0]
	}
	name := []byte("concept0")
	zeroAllocs(t, "FrozenNet.Out", func() { f.Out(ec, EdgeInterpretedBy) })
	zeroAllocs(t, "FrozenNet.In", func() { f.In(ec, EdgeItemEConcept) })
	zeroAllocs(t, "FrozenNet.ItemsForEConcept", func() { f.ItemsForEConcept(ec, 10) })
	zeroAllocs(t, "FrozenNet.EConceptsForItem", func() { f.EConceptsForItem(item, 10) })
	zeroAllocs(t, "FrozenNet.FindByName", func() { f.FindByName("concept0") })
	zeroAllocs(t, "FrozenNet.FirstByNameKindBytes", func() { f.FirstByNameKindBytes(name, KindEConcept) })
	zeroAllocs(t, "FrozenNet.NodesOfKind", func() { f.NodesOfKind(KindItem) })
	zeroAllocs(t, "FrozenNet.IsAncestor", func() { f.IsAncestor(item, ec) })

	// Append traversals into a recycled buffer: BFS state comes from the
	// pool, results land in dst, nothing escapes.
	dst := make([]NodeID, 0, f.NumNodes())
	zeroAllocs(t, "FrozenNet.AppendAncestors", func() { dst = f.AppendAncestors(dst[:0], item, 0) })
	zeroAllocs(t, "FrozenNet.AppendDescendants", func() { dst = f.AppendDescendants(dst[:0], ec, 0) })
	edges := make([]HalfEdge, 0, f.NumNodes())
	zeroAllocs(t, "FrozenNet.AppendItemsForEConcept", func() { edges = f.AppendItemsForEConcept(edges[:0], ec, 0) })
}

// TestNetFindByNameZeroAllocs covers the locked store's share of the hot
// path: the shared read-only view removed its per-call copy.
func TestNetFindByNameZeroAllocs(t *testing.T) {
	n := buildRandomNet(t, 5)
	zeroAllocs(t, "Net.FindByName", func() { n.FindByName("prim0") })
}
