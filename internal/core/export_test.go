package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestExportDOT(t *testing.T) {
	n, ids := buildToyNet(t)
	var buf bytes.Buffer
	if err := n.ExportDOT(&buf, ids["eWedding"], 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph alicoco {") {
		t.Fatal("not a digraph")
	}
	for _, want := range []string{"econcept: wedding party", "primitive: dress", "interpretedBy", "itemEConcept"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	// Depth 1 export should be smaller than depth 3.
	var small, large bytes.Buffer
	if err := n.ExportDOT(&small, ids["eWedding"], 1); err != nil {
		t.Fatal(err)
	}
	if err := n.ExportDOT(&large, ids["eWedding"], 3); err != nil {
		t.Fatal(err)
	}
	if small.Len() >= large.Len() {
		t.Fatal("depth limit has no effect")
	}
}

func TestExportDOTInvalidRoot(t *testing.T) {
	n := NewNet()
	var buf bytes.Buffer
	if err := n.ExportDOT(&buf, 99, 1); err == nil {
		t.Fatal("invalid root should error")
	}
}
