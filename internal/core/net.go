// Package core implements the AliCoCo net itself: a four-layer typed
// property graph (taxonomy classes, primitive concepts, e-commerce concepts,
// items — Figure 1 of the paper) with name and adjacency indexes, typed
// relation validation, traversal helpers, statistics, and snapshot
// persistence. All read operations are safe for concurrent use.
package core

import (
	"fmt"
	"sort"
	"sync"
)

// NodeKind identifies which of the four layers a node belongs to.
type NodeKind int

// The four layers of Figure 1.
const (
	KindClass     NodeKind = iota // taxonomy class (Section 3)
	KindPrimitive                 // primitive concept (Section 4)
	KindEConcept                  // e-commerce concept (Section 5)
	KindItem                      // item (Section 6)
	numKinds
)

// String returns the layer name.
func (k NodeKind) String() string {
	switch k {
	case KindClass:
		return "class"
	case KindPrimitive:
		return "primitive"
	case KindEConcept:
		return "econcept"
	case KindItem:
		return "item"
	default:
		return "invalid"
	}
}

// EdgeKind identifies the relation type between layers.
type EdgeKind int

// Relation types of Figure 1.
const (
	EdgeIsA           EdgeKind = iota // within-layer hierarchy (class->class, primitive->primitive, econcept->econcept)
	EdgeInstanceOf                    // primitive -> class
	EdgeInterpretedBy                 // econcept -> primitive ("e-commerce - primitive cpts")
	EdgeItemPrimitive                 // item -> primitive (property-like relatedness)
	EdgeItemEConcept                  // item -> econcept (needed under a scenario)
	EdgeSchema                        // class -> class, named relation (suitable_when, ...)
	numEdgeKinds
)

// String returns the relation name.
func (k EdgeKind) String() string {
	switch k {
	case EdgeIsA:
		return "isA"
	case EdgeInstanceOf:
		return "instanceOf"
	case EdgeInterpretedBy:
		return "interpretedBy"
	case EdgeItemPrimitive:
		return "itemPrimitive"
	case EdgeItemEConcept:
		return "itemEConcept"
	case EdgeSchema:
		return "schema"
	default:
		return "invalid"
	}
}

// edgeRule describes the layer pairs an edge kind may connect.
var edgeRules = map[EdgeKind][][2]NodeKind{
	EdgeIsA:           {{KindClass, KindClass}, {KindPrimitive, KindPrimitive}, {KindEConcept, KindEConcept}},
	EdgeInstanceOf:    {{KindPrimitive, KindClass}},
	EdgeInterpretedBy: {{KindEConcept, KindPrimitive}},
	EdgeItemPrimitive: {{KindItem, KindPrimitive}},
	EdgeItemEConcept:  {{KindItem, KindEConcept}},
	EdgeSchema:        {{KindClass, KindClass}},
}

// NodeID is a stable node handle within one Net.
type NodeID int32

// InvalidNode is returned by lookups that find nothing.
const InvalidNode NodeID = -1

// Node is one vertex of the net.
type Node struct {
	ID     NodeID
	Kind   NodeKind
	Name   string // surface form (lower-cased); not unique
	Domain string // taxonomy domain for classes/primitives, family for items
}

// HalfEdge is an outgoing or incoming adjacency record.
type HalfEdge struct {
	Peer   NodeID
	Kind   EdgeKind
	Rel    string  // named schema relation, "" otherwise
	Weight float64 // confidence/probability; 1 for manual edges
}

// Net is the concept net store.
type Net struct {
	mu     sync.RWMutex
	nodes  []Node
	outAdj [][]HalfEdge
	inAdj  [][]HalfEdge
	byName map[string][]NodeID
	edges  int
}

// NewNet returns an empty net.
func NewNet() *Net {
	return &Net{byName: make(map[string][]NodeID)}
}

// AddNode inserts a node and returns its ID. Duplicate (kind, name, domain)
// triples return the existing node, making loads idempotent.
func (n *Net) AddNode(kind NodeKind, name, domain string) NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, id := range n.byName[name] {
		nd := n.nodes[id]
		if nd.Kind == kind && nd.Domain == domain {
			return id
		}
	}
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, Node{ID: id, Kind: kind, Name: name, Domain: domain})
	n.outAdj = append(n.outAdj, nil)
	n.inAdj = append(n.inAdj, nil)
	n.byName[name] = append(n.byName[name], id)
	return id
}

// AddEdge inserts a typed edge after validating layer compatibility.
// Duplicate (from, to, kind, rel) edges update the weight instead.
func (n *Net) AddEdge(from, to NodeID, kind EdgeKind, rel string, weight float64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.valid(from) || !n.valid(to) {
		return fmt.Errorf("core: AddEdge with invalid node id %d -> %d", from, to)
	}
	fk, tk := n.nodes[from].Kind, n.nodes[to].Kind
	allowed := false
	for _, rule := range edgeRules[kind] {
		if rule[0] == fk && rule[1] == tk {
			allowed = true
			break
		}
	}
	if !allowed {
		return fmt.Errorf("core: edge %s not allowed from %s to %s", kind, fk, tk)
	}
	for i, he := range n.outAdj[from] {
		if he.Peer == to && he.Kind == kind && he.Rel == rel {
			n.outAdj[from][i].Weight = weight
			for j, ie := range n.inAdj[to] {
				if ie.Peer == from && ie.Kind == kind && ie.Rel == rel {
					n.inAdj[to][j].Weight = weight
				}
			}
			return nil
		}
	}
	n.outAdj[from] = append(n.outAdj[from], HalfEdge{Peer: to, Kind: kind, Rel: rel, Weight: weight})
	n.inAdj[to] = append(n.inAdj[to], HalfEdge{Peer: from, Kind: kind, Rel: rel, Weight: weight})
	n.edges++
	return nil
}

func (n *Net) valid(id NodeID) bool { return id >= 0 && int(id) < len(n.nodes) }

// Node returns the node for id; ok is false for invalid ids.
func (n *Net) Node(id NodeID) (Node, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if !n.valid(id) {
		return Node{}, false
	}
	return n.nodes[id], true
}

// NumNodes returns the node count.
func (n *Net) NumNodes() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.nodes)
}

// NumEdges returns the edge count.
func (n *Net) NumEdges() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.edges
}

// FindByName returns all nodes with the given surface form — several when
// the form is ambiguous (same name, different domains or layers), which is
// how the net disambiguates raw text (Section 4.1). Like the frozen store,
// it returns a shared read-only view rather than a copy: the ids recorded
// for a name are append-only (AddNode never reorders or rewrites them), so
// elements visible through the returned header never change even if a
// concurrent AddNode grows the index.
func (n *Net) FindByName(name string) []NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.byName[name]
}

// FindByNameKind returns nodes with the given name in one layer.
func (n *Net) FindByNameKind(name string, kind NodeKind) []NodeID {
	return n.AppendFindByNameKind(nil, name, kind)
}

// AppendFindByNameKind is FindByNameKind into a caller-owned buffer.
func (n *Net) AppendFindByNameKind(dst []NodeID, name string, kind NodeKind) []NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, id := range n.byName[name] {
		if n.nodes[id].Kind == kind {
			dst = append(dst, id)
		}
	}
	return dst
}

// FirstByNameKind returns the first matching node or InvalidNode.
func (n *Net) FirstByNameKind(name string, kind NodeKind) NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, id := range n.byName[name] {
		if n.nodes[id].Kind == kind {
			return id
		}
	}
	return InvalidNode
}

// FirstByNameKindBytes is FirstByNameKind keyed by a byte buffer; the map
// lookup converts the key without allocating.
func (n *Net) FirstByNameKindBytes(name []byte, kind NodeKind) NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, id := range n.byName[string(name)] {
		if n.nodes[id].Kind == kind {
			return id
		}
	}
	return InvalidNode
}

// Out returns outgoing half-edges of a kind (all kinds if kind < 0).
func (n *Net) Out(id NodeID, kind EdgeKind) []HalfEdge {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return filterAdj(nil, n.outAdj, id, kind, len(n.nodes))
}

// In returns incoming half-edges of a kind (all kinds if kind < 0).
func (n *Net) In(id NodeID, kind EdgeKind) []HalfEdge {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return filterAdj(nil, n.inAdj, id, kind, len(n.nodes))
}

func filterAdj(dst []HalfEdge, adj [][]HalfEdge, id NodeID, kind EdgeKind, n int) []HalfEdge {
	if id < 0 || int(id) >= n {
		return dst
	}
	for _, he := range adj[id] {
		if kind < 0 || he.Kind == kind {
			dst = append(dst, he)
		}
	}
	return dst
}

// Ancestors walks EdgeIsA/EdgeInstanceOf upward from id (BFS) up to
// maxDepth levels (maxDepth <= 0 means unlimited) and returns the visited
// ancestor IDs in BFS order, excluding id itself. Within one node's
// frontier, isA edges are expanded before instanceOf edges — the same
// order the frozen snapshot's kind-grouped CSR yields — so live and frozen
// traversals return identical sequences.
func (n *Net) Ancestors(id NodeID, maxDepth int) []NodeID {
	return n.AppendAncestors(nil, id, maxDepth)
}

// AppendAncestors is Ancestors into a caller-owned buffer.
func (n *Net) AppendAncestors(dst []NodeID, id NodeID, maxDepth int) []NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return bfsHierarchy(dst, n.outAdj, id, maxDepth, len(n.nodes))
}

// Descendants walks EdgeIsA/EdgeInstanceOf downward (incoming edges).
func (n *Net) Descendants(id NodeID, maxDepth int) []NodeID {
	return n.AppendDescendants(nil, id, maxDepth)
}

// AppendDescendants is Descendants into a caller-owned buffer.
func (n *Net) AppendDescendants(dst []NodeID, id NodeID, maxDepth int) []NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return bfsHierarchy(dst, n.inAdj, id, maxDepth, len(n.nodes))
}

func bfsHierarchy(dst []NodeID, adj [][]HalfEdge, id NodeID, maxDepth, n int) []NodeID {
	if id < 0 || int(id) >= n {
		return dst
	}
	type qe struct {
		id    NodeID
		depth int
	}
	seen := map[NodeID]bool{id: true}
	queue := []qe{{id, 0}}
	out := dst
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if maxDepth > 0 && cur.depth >= maxDepth {
			continue
		}
		for _, kind := range [2]EdgeKind{EdgeIsA, EdgeInstanceOf} {
			for _, he := range adj[cur.id] {
				if he.Kind != kind || seen[he.Peer] {
					continue
				}
				seen[he.Peer] = true
				out = append(out, he.Peer)
				queue = append(queue, qe{he.Peer, cur.depth + 1})
			}
		}
	}
	return out
}

// IsAncestor reports whether anc is reachable upward from id.
func (n *Net) IsAncestor(id, anc NodeID) bool {
	for _, a := range n.Ancestors(id, 0) {
		if a == anc {
			return true
		}
	}
	return false
}

// NodesOfKind returns all node IDs in one layer.
func (n *Net) NodesOfKind(kind NodeKind) []NodeID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []NodeID
	for _, nd := range n.nodes {
		if nd.Kind == kind {
			out = append(out, nd.ID)
		}
	}
	return out
}

// ItemsForEConcept returns items associated with an e-commerce concept,
// best-weight first, up to limit (limit <= 0 means all).
func (n *Net) ItemsForEConcept(id NodeID, limit int) []HalfEdge {
	return n.AppendItemsForEConcept(nil, id, limit)
}

// AppendItemsForEConcept is ItemsForEConcept into a caller-owned buffer.
func (n *Net) AppendItemsForEConcept(dst []HalfEdge, id NodeID, limit int) []HalfEdge {
	n.mu.RLock()
	mark := len(dst)
	dst = filterAdj(dst, n.inAdj, id, EdgeItemEConcept, len(n.nodes))
	n.mu.RUnlock()
	return sortTrimPostings(dst, mark, limit)
}

// EConceptsForItem returns the e-commerce concepts an item serves.
func (n *Net) EConceptsForItem(id NodeID, limit int) []HalfEdge {
	return n.AppendEConceptsForItem(nil, id, limit)
}

// AppendEConceptsForItem is EConceptsForItem into a caller-owned buffer.
func (n *Net) AppendEConceptsForItem(dst []HalfEdge, id NodeID, limit int) []HalfEdge {
	n.mu.RLock()
	mark := len(dst)
	dst = filterAdj(dst, n.outAdj, id, EdgeItemEConcept, len(n.nodes))
	n.mu.RUnlock()
	return sortTrimPostings(dst, mark, limit)
}

// sortTrimPostings weight-sorts the tail of dst appended after mark and
// trims it to limit entries (limit <= 0 means all).
func sortTrimPostings(dst []HalfEdge, mark, limit int) []HalfEdge {
	sortHalfEdgesByWeight(dst[mark:])
	if limit > 0 && len(dst)-mark > limit {
		dst = dst[:mark+limit]
	}
	return dst
}

// PrimitivesForEConcept returns the primitive concepts interpreting an
// e-commerce concept (the "understanding" links of Section 5.3).
func (n *Net) PrimitivesForEConcept(id NodeID) []HalfEdge {
	return n.Out(id, EdgeInterpretedBy)
}

func sortHalfEdgesByWeight(hes []HalfEdge) {
	sort.Slice(hes, func(i, j int) bool {
		if hes[i].Weight != hes[j].Weight {
			return hes[i].Weight > hes[j].Weight
		}
		return hes[i].Peer < hes[j].Peer
	})
}
