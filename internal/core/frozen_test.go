package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// buildRandomNet plants a randomized four-layer net with every edge kind so
// equivalence tests exercise all CSR segments.
func buildRandomNet(t testing.TB, seed int64) *Net {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := NewNet()
	var classes, prims, ecpts, items []NodeID
	nClasses, nPrims, nEcpts, nItems := 4+rng.Intn(4), 15+rng.Intn(15), 8+rng.Intn(8), 20+rng.Intn(20)
	for i := 0; i < nClasses; i++ {
		classes = append(classes, n.AddNode(KindClass, fmt.Sprintf("class%d", i), "Category"))
	}
	domains := []string{"Category", "Color", "Function", "Time"}
	for i := 0; i < nPrims; i++ {
		// A few shared surfaces so FindByName returns multiple nodes.
		name := fmt.Sprintf("prim%d", i%max(1, nPrims-3))
		prims = append(prims, n.AddNode(KindPrimitive, name, domains[rng.Intn(len(domains))]+fmt.Sprint(i)))
	}
	for i := 0; i < nEcpts; i++ {
		ecpts = append(ecpts, n.AddNode(KindEConcept, fmt.Sprintf("concept%d", i), ""))
	}
	for i := 0; i < nItems; i++ {
		items = append(items, n.AddNode(KindItem, fmt.Sprintf("item%d", i), "fam"))
	}
	addEdge := func(from, to NodeID, kind EdgeKind, rel string) {
		if from == to {
			return
		}
		if err := n.AddEdge(from, to, kind, rel, rng.Float64()); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	pick := func(s []NodeID) NodeID { return s[rng.Intn(len(s))] }
	for i := 0; i < nClasses*2; i++ {
		addEdge(pick(classes), pick(classes), EdgeIsA, "")
	}
	for i := 0; i < nClasses; i++ {
		addEdge(pick(classes), pick(classes), EdgeSchema, "suitable_when")
	}
	for i := 0; i < nPrims*2; i++ {
		addEdge(pick(prims), pick(prims), EdgeIsA, "")
	}
	for _, p := range prims {
		addEdge(p, pick(classes), EdgeInstanceOf, "")
	}
	for i := 0; i < nEcpts*3; i++ {
		addEdge(pick(ecpts), pick(prims), EdgeInterpretedBy, "")
	}
	for i := 0; i < nEcpts; i++ {
		addEdge(pick(ecpts), pick(ecpts), EdgeIsA, "")
	}
	for i := 0; i < nItems*3; i++ {
		addEdge(pick(items), pick(prims), EdgeItemPrimitive, "")
	}
	for i := 0; i < nItems*3; i++ {
		addEdge(pick(items), pick(ecpts), EdgeItemEConcept, "")
	}
	return n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// canonicalEdges sorts a copied half-edge slice into a canonical order so
// live and frozen answers compare as multisets.
func canonicalEdges(hes []HalfEdge) []HalfEdge {
	out := append([]HalfEdge(nil), hes...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Peer != out[j].Peer {
			return out[i].Peer < out[j].Peer
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].Rel != out[j].Rel {
			return out[i].Rel < out[j].Rel
		}
		return out[i].Weight < out[j].Weight
	})
	return out
}

func sortedIDs(ids []NodeID) []NodeID {
	out := append([]NodeID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func edgesEqual(a, b []HalfEdge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func idsEqual(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFrozenEquivalenceRandomized(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		n := buildRandomNet(t, seed)
		f := n.Freeze()
		if f.NumNodes() != n.NumNodes() || f.NumEdges() != n.NumEdges() {
			t.Fatalf("seed %d: counts differ", seed)
		}
		for id := NodeID(0); int(id) < n.NumNodes(); id++ {
			ln, _ := n.Node(id)
			fn, _ := f.Node(id)
			if ln != fn {
				t.Fatalf("seed %d: node %d differs", seed, id)
			}
			for kind := EdgeKind(-1); kind < numEdgeKinds; kind++ {
				if !edgesEqual(canonicalEdges(n.Out(id, kind)), canonicalEdges(f.Out(id, kind))) {
					t.Fatalf("seed %d: Out(%d,%v) differs:\nlive  %v\nfrozen %v",
						seed, id, kind, n.Out(id, kind), f.Out(id, kind))
				}
				if !edgesEqual(canonicalEdges(n.In(id, kind)), canonicalEdges(f.In(id, kind))) {
					t.Fatalf("seed %d: In(%d,%v) differs", seed, id, kind)
				}
			}
			// Exact order: both stores expand isA before instanceOf per
			// frontier node, so the BFS sequences must be identical.
			for _, depth := range []int{0, 1, 2} {
				if !idsEqual(n.Ancestors(id, depth), f.Ancestors(id, depth)) {
					t.Fatalf("seed %d: Ancestors(%d,%d) differ:\nlive  %v\nfrozen %v",
						seed, id, depth, n.Ancestors(id, depth), f.Ancestors(id, depth))
				}
				if !idsEqual(n.Descendants(id, depth), f.Descendants(id, depth)) {
					t.Fatalf("seed %d: Descendants(%d,%d) differ", seed, id, depth)
				}
			}
			for anc := NodeID(0); int(anc) < n.NumNodes(); anc += 3 {
				if n.IsAncestor(id, anc) != f.IsAncestor(id, anc) {
					t.Fatalf("seed %d: IsAncestor(%d,%d) differs", seed, id, anc)
				}
			}
		}
		for kind := NodeKind(0); kind < numKinds; kind++ {
			if !idsEqual(sortedIDs(n.NodesOfKind(kind)), sortedIDs(f.NodesOfKind(kind))) {
				t.Fatalf("seed %d: NodesOfKind(%v) differ", seed, kind)
			}
		}
		for _, ec := range n.NodesOfKind(KindEConcept) {
			for _, limit := range []int{0, 1, 3} {
				live := n.ItemsForEConcept(ec, limit)
				froz := f.ItemsForEConcept(ec, limit)
				// Both are weight-sorted; ties may order arbitrarily, so
				// compare the weight sequence and the peer multiset.
				if len(live) != len(froz) {
					t.Fatalf("seed %d: ItemsForEConcept(%d,%d) length differs", seed, ec, limit)
				}
				for i := range live {
					if live[i].Weight != froz[i].Weight {
						t.Fatalf("seed %d: ItemsForEConcept(%d,%d) weight order differs", seed, ec, limit)
					}
				}
			}
			if !edgesEqual(canonicalEdges(n.PrimitivesForEConcept(ec)), canonicalEdges(f.PrimitivesForEConcept(ec))) {
				t.Fatalf("seed %d: PrimitivesForEConcept(%d) differs", seed, ec)
			}
		}
		for _, it := range n.NodesOfKind(KindItem) {
			live, froz := n.EConceptsForItem(it, 5), f.EConceptsForItem(it, 5)
			if len(live) != len(froz) {
				t.Fatalf("seed %d: EConceptsForItem(%d) length differs", seed, it)
			}
			for i := range live {
				if live[i].Weight != froz[i].Weight {
					t.Fatalf("seed %d: EConceptsForItem(%d) weight order differs", seed, it)
				}
			}
		}
		// Name index equivalence.
		for id := NodeID(0); int(id) < n.NumNodes(); id++ {
			nd, _ := n.Node(id)
			if !idsEqual(sortedIDs(n.FindByName(nd.Name)), sortedIDs(f.FindByName(nd.Name))) {
				t.Fatalf("seed %d: FindByName(%q) differs", seed, nd.Name)
			}
			if !idsEqual(n.FindByNameKind(nd.Name, nd.Kind), f.FindByNameKind(nd.Name, nd.Kind)) {
				t.Fatalf("seed %d: FindByNameKind(%q) differs", seed, nd.Name)
			}
			if n.FirstByNameKind(nd.Name, nd.Kind) != f.FirstByNameKind(nd.Name, nd.Kind) {
				t.Fatalf("seed %d: FirstByNameKind(%q) differs", seed, nd.Name)
			}
		}
	}
}

func TestFrozenPostingsSorted(t *testing.T) {
	n := buildRandomNet(t, 42)
	f := n.Freeze()
	for _, ec := range f.NodesOfKind(KindEConcept) {
		items := f.ItemsForEConcept(ec, 0)
		for i := 1; i < len(items); i++ {
			if items[i].Weight > items[i-1].Weight {
				t.Fatalf("postings of %d not weight-sorted", ec)
			}
		}
	}
}

func TestFrozenImmuneToLaterWrites(t *testing.T) {
	n, ids := buildToyNet(t)
	f := n.Freeze()
	nodesBefore, edgesBefore := f.NumNodes(), f.NumEdges()
	outBefore := len(f.Out(ids["item2"], EdgeItemPrimitive))
	extra := n.AddNode(KindPrimitive, "velvet", "Material")
	if err := n.AddEdge(ids["item2"], extra, EdgeItemPrimitive, "", 1); err != nil {
		t.Fatal(err)
	}
	if f.NumNodes() != nodesBefore || f.NumEdges() != edgesBefore {
		t.Fatal("snapshot changed after live-net writes")
	}
	if len(f.Out(ids["item2"], EdgeItemPrimitive)) != outBefore {
		t.Fatal("snapshot adjacency changed after live-net writes")
	}
	if len(f.FindByName("velvet")) != 0 {
		t.Fatal("snapshot name index changed after live-net writes")
	}
}

func TestFrozenInvalidIDs(t *testing.T) {
	n, _ := buildToyNet(t)
	f := n.Freeze()
	if _, ok := f.Node(-1); ok {
		t.Fatal("negative id should not resolve")
	}
	if _, ok := f.Node(NodeID(f.NumNodes())); ok {
		t.Fatal("out-of-range id should not resolve")
	}
	if f.Out(-1, EdgeIsA) != nil || f.In(NodeID(999), -1) != nil {
		t.Fatal("invalid ids should have no adjacency")
	}
	if f.Ancestors(-5, 0) != nil || f.Descendants(NodeID(999), 0) != nil {
		t.Fatal("invalid ids should have no traversal")
	}
	if f.IsAncestor(0, -1) || f.IsAncestor(-1, 0) || f.IsAncestor(0, 0) {
		t.Fatal("invalid IsAncestor cases should be false")
	}
	if f.NodesOfKind(NodeKind(99)) != nil {
		t.Fatal("invalid kind should be empty")
	}
	if f.Out(0, EdgeKind(99)) != nil {
		t.Fatal("invalid edge kind should be empty")
	}
}

func TestFrozenStatsMatchLive(t *testing.T) {
	n := buildRandomNet(t, 7)
	f := n.Freeze()
	ls, fs := n.ComputeStats(), f.ComputeStats()
	if ls.Nodes != fs.Nodes || ls.Edges != fs.Edges ||
		ls.IsAPrimitive != fs.IsAPrimitive || ls.IsAEConcept != fs.IsAEConcept ||
		ls.AvgItemsPerEConcept != fs.AvgItemsPerEConcept {
		t.Fatalf("stats differ:\nlive  %+v\nfrozen %+v", ls, fs)
	}
	for k, v := range ls.EdgesByKind {
		if fs.EdgesByKind[k] != v {
			t.Fatalf("edge kind %s count differs", k)
		}
	}
}

// TestFrozenConcurrentReads hammers every frozen read path from many
// goroutines; run with -race to prove the snapshot is lock-free safe (the
// pooled visited arrays are the part that could regress).
func TestFrozenConcurrentReads(t *testing.T) {
	n := buildRandomNet(t, 99)
	f := n.Freeze()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := NodeID((g*31 + i) % f.NumNodes())
				f.Out(id, EdgeIsA)
				f.In(id, -1)
				f.Ancestors(id, 0)
				f.Descendants(id, 2)
				f.IsAncestor(id, NodeID(i%f.NumNodes()))
				f.ItemsForEConcept(id, 5)
				f.EConceptsForItem(id, 5)
				f.NodesOfKind(KindItem)
				nd, _ := f.Node(id)
				f.FindByName(nd.Name)
			}
		}(g)
	}
	wg.Wait()
}
