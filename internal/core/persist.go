package core

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the gob wire form of a Net.
type snapshot struct {
	Version int
	Nodes   []Node
	Out     [][]HalfEdge
	Edges   int
}

const snapshotVersion = 1

// Save writes a binary snapshot of the net. Only outgoing adjacency is
// stored; the incoming index is rebuilt on load.
func (n *Net) Save(w io.Writer) error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s := snapshot{Version: snapshotVersion, Nodes: n.nodes, Out: n.outAdj, Edges: n.edges}
	if err := gob.NewEncoder(w).Encode(&s); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save and returns the reconstructed net.
func Load(r io.Reader) (*Net, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("core: load: unsupported snapshot version %d", s.Version)
	}
	n := NewNet()
	n.nodes = s.Nodes
	n.outAdj = s.Out
	n.edges = s.Edges
	n.inAdj = make([][]HalfEdge, len(s.Nodes))
	for _, nd := range s.Nodes {
		n.byName[nd.Name] = append(n.byName[nd.Name], nd.ID)
	}
	for from, hes := range s.Out {
		for _, he := range hes {
			if !n.valid(he.Peer) {
				return nil, fmt.Errorf("core: load: edge to invalid node %d", he.Peer)
			}
			n.inAdj[he.Peer] = append(n.inAdj[he.Peer], HalfEdge{
				Peer: NodeID(from), Kind: he.Kind, Rel: he.Rel, Weight: he.Weight,
			})
		}
	}
	return n, nil
}
