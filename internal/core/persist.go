package core

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the gob wire form of a Net.
type snapshot struct {
	Version int
	Nodes   []Node
	Out     [][]HalfEdge
	Edges   int
}

const snapshotVersion = 1

// Save writes a binary snapshot of the net. Only outgoing adjacency is
// stored; the incoming index is rebuilt on load.
func (n *Net) Save(w io.Writer) error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s := snapshot{Version: snapshotVersion, Nodes: n.nodes, Out: n.outAdj, Edges: n.edges}
	if err := gob.NewEncoder(w).Encode(&s); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save and returns the reconstructed net.
// Every structural field is validated — node IDs against slice indexes,
// node and edge kinds against their enum ranges, adjacency shape, and the
// edge counter (recomputed from adjacency rather than trusted) — so a
// corrupt snapshot returns an error here instead of panicking later in
// buildCSR or Freeze.
func Load(r io.Reader) (*Net, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("core: load: unsupported snapshot version %d", s.Version)
	}
	if s.Edges < 0 {
		return nil, fmt.Errorf("core: load: negative edge count %d", s.Edges)
	}
	if len(s.Out) != len(s.Nodes) {
		return nil, fmt.Errorf("core: load: adjacency for %d nodes, snapshot has %d", len(s.Out), len(s.Nodes))
	}
	for i, nd := range s.Nodes {
		if nd.ID != NodeID(i) {
			return nil, fmt.Errorf("core: load: node at index %d carries id %d", i, nd.ID)
		}
		if nd.Kind < 0 || nd.Kind >= numKinds {
			return nil, fmt.Errorf("core: load: node %d has kind %d out of range", i, nd.Kind)
		}
	}
	n := NewNet()
	n.nodes = s.Nodes
	n.outAdj = s.Out
	n.inAdj = make([][]HalfEdge, len(s.Nodes))
	for _, nd := range s.Nodes {
		n.byName[nd.Name] = append(n.byName[nd.Name], nd.ID)
	}
	edges := 0
	for from, hes := range s.Out {
		for _, he := range hes {
			if !n.valid(he.Peer) {
				return nil, fmt.Errorf("core: load: edge to invalid node %d", he.Peer)
			}
			if he.Kind < 0 || he.Kind >= numEdgeKinds {
				return nil, fmt.Errorf("core: load: edge %d->%d has kind %d out of range", from, he.Peer, he.Kind)
			}
			n.inAdj[he.Peer] = append(n.inAdj[he.Peer], HalfEdge{
				Peer: NodeID(from), Kind: he.Kind, Rel: he.Rel, Weight: he.Weight,
			})
			edges++
		}
	}
	// The stored counter is advisory only: a stale value would poison
	// NumEdges and Stats forever, so recompute from adjacency.
	n.edges = edges
	return n, nil
}
