package core

import (
	"sync"

	"alicoco/internal/par"
)

// FrozenNet is an immutable, lock-free snapshot of a Net, laid out for the
// online serving workloads of Sections 8.1-8.2: adjacency is stored in CSR
// form — one flat []HalfEdge per direction plus an offset array indexed by
// (node, edge kind) — so Out and In are zero-allocation, zero-lock
// sub-slice lookups; item<->e-commerce-concept postings are pre-sorted by
// weight at freeze time so concept-card assembly is a slice window instead
// of a per-query sort; BFS traversals reuse pooled generation-stamped
// visited arrays instead of allocating a map per query; and a per-layer
// node index makes NodesOfKind a direct lookup instead of an O(n) scan.
//
// A FrozenNet never changes after Freeze returns, so every method is safe
// for unlimited concurrent use. To serve updates, mutate the live Net
// offline and swap in a fresh Freeze() — the paper's build-offline /
// serve-online split.
//
// A FrozenNet may also be one shard of a larger net (see FreezeShards and
// ShardSet): it then holds the contiguous global-ID range [base,
// base+len(nodes)) with shard-local storage indexing, while node IDs —
// including HalfEdge.Peer — stay global. Point lookups (Node, Out, In, the
// name indexes) answer only for nodes the shard owns; traversals are
// shard-local (edges leading outside the shard are not followed — the
// ShardSet runs the cross-shard BFS). A whole-net freeze is simply the
// base=0 shard that owns everything, so nothing changes for the N=1 path.
type FrozenNet struct {
	nodes  []Node
	byName map[string][]NodeID
	byKind [numKinds][]NodeID
	out    csr
	in     csr
	edges  int

	// base is the first global node ID this shard owns; total is the node
	// count of the whole net the shard belongs to (== len(nodes) for a
	// whole-net freeze). Storage is indexed by id-base.
	base  NodeID
	total int

	// checksum is the CRC-32 recorded while loading a persisted snapshot
	// (see persist_frozen.go); 0 for snapshots frozen from a live net.
	checksum uint32

	visit sync.Pool // *visitState, reused across traversals
}

// Base returns the first global node ID this shard owns (0 for a whole-net
// freeze).
func (f *FrozenNet) Base() NodeID { return f.base }

// TotalNodes returns the node count of the whole net this snapshot belongs
// to — equal to NumNodes for a whole-net freeze, larger for a shard.
func (f *FrozenNet) TotalNodes() int { return f.total }

// local maps a global node ID to this shard's storage index, or -1 when the
// shard does not own it.
func (f *FrozenNet) local(id NodeID) int {
	lid := int(id) - int(f.base)
	if lid < 0 || lid >= len(f.nodes) {
		return -1
	}
	return lid
}

// Checksum returns the CRC-32 of the snapshot file this net was loaded
// from, or 0 when the net was frozen in-process rather than loaded. Serving
// surfaces expose it so operators can match the running snapshot against
// the artifact that produced it.
func (f *FrozenNet) Checksum() uint32 { return f.checksum }

// csr is compressed-sparse-row adjacency grouped by edge kind: the edges of
// node id with kind k live in edges[off[id*numEdgeKinds+k] :
// off[id*numEdgeKinds+k+1]], and all kinds of one node are contiguous.
type csr struct {
	off   []int32
	edges []HalfEdge
}

func (c *csr) slice(id NodeID, kind EdgeKind, n int) []HalfEdge {
	if id < 0 || int(id) >= n || kind >= numEdgeKinds {
		return nil
	}
	base := int(id) * int(numEdgeKinds)
	if kind < 0 {
		return c.edges[c.off[base]:c.off[base+int(numEdgeKinds)]]
	}
	return c.edges[c.off[base+int(kind)]:c.off[base+int(kind)+1]]
}

// buildCSR converts slice-of-slices adjacency into kind-grouped CSR,
// preserving insertion order within each (node, kind) group.
func buildCSR(adj [][]HalfEdge) csr {
	n := len(adj)
	k := int(numEdgeKinds)
	off := make([]int32, n*k+1)
	total := 0
	for id, hes := range adj {
		for _, he := range hes {
			off[id*k+int(he.Kind)+1]++
			total++
		}
	}
	for i := 1; i < len(off); i++ {
		off[i] += off[i-1]
	}
	edges := make([]HalfEdge, total)
	cursor := make([]int32, n*k)
	for id, hes := range adj {
		for _, he := range hes {
			slot := id*k + int(he.Kind)
			edges[int(off[slot])+int(cursor[slot])] = he
			cursor[slot]++
		}
	}
	return csr{off: off, edges: edges}
}

// sortPostings weight-sorts every node's segment of one edge kind, so
// serving reads them best-first without sorting per query.
func (c *csr) sortPostings(n int, kind EdgeKind) {
	for id := 0; id < n; id++ {
		seg := c.slice(NodeID(id), kind, n)
		if len(seg) > 1 {
			sortHalfEdgesByWeight(seg)
		}
	}
}

// Freeze builds a read-optimized immutable snapshot of the net's current
// state. The snapshot shares nothing mutable with the live net: later
// AddNode/AddEdge calls do not affect it.
func (n *Net) Freeze() *FrozenNet {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.freezeRangeLocked(0, len(n.nodes), len(n.nodes))
}

// FreezeShards partitions the net into count contiguous node-ID ranges and
// freezes each independently (in parallel — freezing is read-only, so the
// shards share one read lock). Shard i owns [i*stride, min((i+1)*stride,
// total)) with stride = ceil(total/count); trailing shards may be empty
// when count exceeds the node count. The shards assemble into a ShardSet
// for serving, and each persists/reloads on its own (see persist_frozen.go
// version 2 and pipeline.SaveShards).
func (n *Net) FreezeShards(count int) []*FrozenNet {
	if count < 1 {
		count = 1
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	total := len(n.nodes)
	stride := ShardStride(total, count)
	shards := make([]*FrozenNet, count)
	par.For(0, count, func(i int) {
		base := min(i*stride, total)
		end := min(base+stride, total)
		shards[i] = n.freezeRangeLocked(base, end, total)
	})
	return shards
}

// ShardStride is the per-shard node count of a count-way range partition
// over total nodes: ceil(total/count), floored at 1 so id/stride routing
// stays well-defined on empty nets.
func ShardStride(total, count int) int {
	stride := (total + count - 1) / count
	if stride < 1 {
		stride = 1
	}
	return stride
}

// freezeRangeLocked freezes the node range [base, end) of a net with total
// nodes. Callers hold n.mu. Node IDs (and edge peers) stay global; storage
// is indexed by id-base. The per-name and per-kind indexes are rebuilt by
// an ascending scan, which reproduces the live net's insertion order
// because node IDs are assigned sequentially.
func (n *Net) freezeRangeLocked(base, end, total int) *FrozenNet {
	f := &FrozenNet{
		nodes:  append([]Node(nil), n.nodes[base:end]...),
		byName: make(map[string][]NodeID, end-base),
		out:    buildCSR(n.outAdj[base:end]),
		in:     buildCSR(n.inAdj[base:end]),
		base:   NodeID(base),
		total:  total,
	}
	f.edges = len(f.out.edges)
	for i := range f.nodes {
		nd := &f.nodes[i]
		f.byName[nd.Name] = append(f.byName[nd.Name], nd.ID)
		f.byKind[nd.Kind] = append(f.byKind[nd.Kind], nd.ID)
	}
	nn := len(f.nodes)
	f.out.sortPostings(nn, EdgeItemEConcept)
	f.in.sortPostings(nn, EdgeItemEConcept)
	f.visit.New = func() any {
		return &visitState{gen: make([]uint32, nn)}
	}
	return f
}

// Node returns the node for id; ok is false for invalid ids (including ids
// owned by a different shard).
func (f *FrozenNet) Node(id NodeID) (Node, bool) {
	lid := f.local(id)
	if lid < 0 {
		return Node{}, false
	}
	return f.nodes[lid], true
}

// NumNodes returns the node count.
func (f *FrozenNet) NumNodes() int { return len(f.nodes) }

// NumEdges returns the edge count.
func (f *FrozenNet) NumEdges() int { return f.edges }

// FindByName returns all nodes with the given surface form. The slice is a
// read-only view into the snapshot.
func (f *FrozenNet) FindByName(name string) []NodeID { return f.byName[name] }

// FindByNameKind returns nodes with the given name in one layer.
func (f *FrozenNet) FindByNameKind(name string, kind NodeKind) []NodeID {
	return f.AppendFindByNameKind(nil, name, kind)
}

// AppendFindByNameKind is FindByNameKind into a caller-owned buffer.
func (f *FrozenNet) AppendFindByNameKind(dst []NodeID, name string, kind NodeKind) []NodeID {
	for _, id := range f.byName[name] {
		if f.nodes[id-f.base].Kind == kind {
			dst = append(dst, id)
		}
	}
	return dst
}

// FirstByNameKind returns the first matching node or InvalidNode.
func (f *FrozenNet) FirstByNameKind(name string, kind NodeKind) NodeID {
	for _, id := range f.byName[name] {
		if f.nodes[id-f.base].Kind == kind {
			return id
		}
	}
	return InvalidNode
}

// FirstByNameKindBytes is FirstByNameKind keyed by a byte buffer. The
// map index with an inline string conversion compiles to an allocation-free
// lookup, so hot callers can assemble the key in a reused buffer.
func (f *FrozenNet) FirstByNameKindBytes(name []byte, kind NodeKind) NodeID {
	for _, id := range f.byName[string(name)] {
		if f.nodes[id-f.base].Kind == kind {
			return id
		}
	}
	return InvalidNode
}

// Out returns outgoing half-edges of a kind (all kinds if kind < 0) as a
// zero-allocation view into the CSR layout. Only the owning shard answers.
func (f *FrozenNet) Out(id NodeID, kind EdgeKind) []HalfEdge {
	return f.out.slice(NodeID(f.local(id)), kind, len(f.nodes))
}

// In returns incoming half-edges of a kind (all kinds if kind < 0) as a
// zero-allocation view into the CSR layout. Only the owning shard answers.
func (f *FrozenNet) In(id NodeID, kind EdgeKind) []HalfEdge {
	return f.in.slice(NodeID(f.local(id)), kind, len(f.nodes))
}

// NodesOfKind returns all node IDs in one layer, precomputed at freeze
// time. The slice is a read-only view into the snapshot.
func (f *FrozenNet) NodesOfKind(kind NodeKind) []NodeID {
	if kind < 0 || kind >= numKinds {
		return nil
	}
	return f.byKind[kind]
}

// ItemsForEConcept returns items associated with an e-commerce concept,
// best-weight first, up to limit (limit <= 0 means all). The postings were
// sorted at freeze time, so this is a bounds check and a slice window.
func (f *FrozenNet) ItemsForEConcept(id NodeID, limit int) []HalfEdge {
	items := f.In(id, EdgeItemEConcept)
	if limit > 0 && len(items) > limit {
		items = items[:limit]
	}
	return items
}

// AppendItemsForEConcept is ItemsForEConcept into a caller-owned buffer.
func (f *FrozenNet) AppendItemsForEConcept(dst []HalfEdge, id NodeID, limit int) []HalfEdge {
	return append(dst, f.ItemsForEConcept(id, limit)...)
}

// EConceptsForItem returns the e-commerce concepts an item serves,
// best-weight first, up to limit (limit <= 0 means all).
func (f *FrozenNet) EConceptsForItem(id NodeID, limit int) []HalfEdge {
	out := f.Out(id, EdgeItemEConcept)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// AppendEConceptsForItem is EConceptsForItem into a caller-owned buffer.
func (f *FrozenNet) AppendEConceptsForItem(dst []HalfEdge, id NodeID, limit int) []HalfEdge {
	return append(dst, f.EConceptsForItem(id, limit)...)
}

// PrimitivesForEConcept returns the primitive concepts interpreting an
// e-commerce concept.
func (f *FrozenNet) PrimitivesForEConcept(id NodeID) []HalfEdge {
	return f.Out(id, EdgeInterpretedBy)
}

// visitState is a reusable BFS scratchpad: gen[v] == epoch marks v visited
// in the current traversal, so clearing between traversals is a single
// epoch increment instead of a map allocation or an O(n) wipe.
type visitState struct {
	gen   []uint32
	epoch uint32
	queue []frontierEntry
}

type frontierEntry struct {
	id    NodeID
	depth int32
}

// next advances the epoch, wiping the visited set in O(1); on the (rare)
// uint32 wraparound it clears the array to stay sound.
func (v *visitState) next() {
	v.epoch++
	if v.epoch == 0 {
		for i := range v.gen {
			v.gen[i] = 0
		}
		v.epoch = 1
	}
	v.queue = v.queue[:0]
}

// traverse runs the isA/instanceOf BFS over one CSR direction. When target
// is a valid node it stops early and reports reachability; otherwise it
// appends visited ids (excluding start, BFS order) to dst. dst is returned
// unchanged for invalid start ids. On a shard the BFS is shard-local: an
// edge to a node the shard does not own is not followed (a whole-net freeze
// owns every peer, so this never triggers for it) — cross-shard traversal
// is the ShardSet's job.
func (f *FrozenNet) traverse(adj *csr, start NodeID, maxDepth int, target NodeID, dst []NodeID, collect bool) ([]NodeID, bool) {
	if f.local(start) < 0 {
		return dst, false
	}
	v := f.visit.Get().(*visitState)
	defer f.visit.Put(v)
	v.next()
	v.gen[f.local(start)] = v.epoch
	v.queue = append(v.queue, frontierEntry{start, 0})
	n := len(f.nodes)
	for qi := 0; qi < len(v.queue); qi++ {
		cur := v.queue[qi]
		if maxDepth > 0 && int(cur.depth) >= maxDepth {
			continue
		}
		for _, kind := range [2]EdgeKind{EdgeIsA, EdgeInstanceOf} {
			for _, he := range adj.slice(NodeID(int(cur.id)-int(f.base)), kind, n) {
				plid := f.local(he.Peer)
				if plid < 0 {
					continue // other shard's node: shard-local BFS stops here
				}
				if v.gen[plid] == v.epoch {
					continue
				}
				v.gen[plid] = v.epoch
				if he.Peer == target {
					return dst, true
				}
				if collect {
					dst = append(dst, he.Peer)
				}
				v.queue = append(v.queue, frontierEntry{he.Peer, cur.depth + 1})
			}
		}
	}
	return dst, false
}

// Ancestors walks EdgeIsA/EdgeInstanceOf upward from id (BFS) up to
// maxDepth levels (maxDepth <= 0 means unlimited) and returns the visited
// ancestor IDs in traversal order, excluding id itself.
func (f *FrozenNet) Ancestors(id NodeID, maxDepth int) []NodeID {
	out, _ := f.traverse(&f.out, id, maxDepth, InvalidNode, nil, true)
	return out
}

// AppendAncestors is Ancestors into a caller-owned buffer: the BFS runs on
// the pooled visited array and writes straight into dst, so a caller that
// recycles its buffer pays zero steady-state allocations.
func (f *FrozenNet) AppendAncestors(dst []NodeID, id NodeID, maxDepth int) []NodeID {
	dst, _ = f.traverse(&f.out, id, maxDepth, InvalidNode, dst, true)
	return dst
}

// Descendants walks EdgeIsA/EdgeInstanceOf downward (incoming edges).
func (f *FrozenNet) Descendants(id NodeID, maxDepth int) []NodeID {
	out, _ := f.traverse(&f.in, id, maxDepth, InvalidNode, nil, true)
	return out
}

// AppendDescendants is Descendants into a caller-owned buffer.
func (f *FrozenNet) AppendDescendants(dst []NodeID, id NodeID, maxDepth int) []NodeID {
	dst, _ = f.traverse(&f.in, id, maxDepth, InvalidNode, dst, true)
	return dst
}

// IsAncestor reports whether anc is reachable upward from id. It allocates
// nothing in steady state: the BFS runs on a pooled visited array and stops
// as soon as anc is found.
func (f *FrozenNet) IsAncestor(id, anc NodeID) bool {
	if f.local(anc) < 0 || id == anc {
		return false
	}
	_, found := f.traverse(&f.out, id, 0, anc, nil, false)
	return found
}

// ComputeStats summarizes the snapshot the way (*Net).ComputeStats does.
func (f *FrozenNet) ComputeStats() Stats {
	s := Stats{
		Nodes:           len(f.nodes),
		Edges:           f.edges,
		PerKind:         make(map[string]int),
		PrimitivesByDom: make(map[string]int),
		EdgesByKind:     make(map[string]int),
	}
	items := len(f.byKind[KindItem])
	econcepts := len(f.byKind[KindEConcept])
	var itemPrim, itemEcpt, ecptPrim int
	for id, nd := range f.nodes {
		s.PerKind[nd.Kind.String()]++
		if nd.Kind == KindPrimitive {
			s.PrimitivesByDom[nd.Domain]++
		}
		for _, he := range f.out.slice(NodeID(id), -1, len(f.nodes)) {
			s.EdgesByKind[he.Kind.String()]++
			switch he.Kind {
			case EdgeIsA:
				switch nd.Kind {
				case KindPrimitive:
					s.IsAPrimitive++
				case KindEConcept:
					s.IsAEConcept++
				}
			case EdgeItemPrimitive:
				itemPrim++
			case EdgeItemEConcept:
				itemEcpt++
			case EdgeInterpretedBy:
				ecptPrim++
			}
		}
	}
	if items > 0 {
		s.AvgPrimitivesPerItem = float64(itemPrim) / float64(items)
		s.AvgEConceptsPerItem = float64(itemEcpt) / float64(items)
	}
	if econcepts > 0 {
		s.AvgItemsPerEConcept = float64(itemEcpt) / float64(econcepts)
		s.AvgPrimsPerEConcept = float64(ecptPrim) / float64(econcepts)
	}
	return s
}
