package core

import "sync"

// FrozenNet is an immutable, lock-free snapshot of a Net, laid out for the
// online serving workloads of Sections 8.1-8.2: adjacency is stored in CSR
// form — one flat []HalfEdge per direction plus an offset array indexed by
// (node, edge kind) — so Out and In are zero-allocation, zero-lock
// sub-slice lookups; item<->e-commerce-concept postings are pre-sorted by
// weight at freeze time so concept-card assembly is a slice window instead
// of a per-query sort; BFS traversals reuse pooled generation-stamped
// visited arrays instead of allocating a map per query; and a per-layer
// node index makes NodesOfKind a direct lookup instead of an O(n) scan.
//
// A FrozenNet never changes after Freeze returns, so every method is safe
// for unlimited concurrent use. To serve updates, mutate the live Net
// offline and swap in a fresh Freeze() — the paper's build-offline /
// serve-online split.
type FrozenNet struct {
	nodes  []Node
	byName map[string][]NodeID
	byKind [numKinds][]NodeID
	out    csr
	in     csr
	edges  int

	// checksum is the CRC-32 recorded while loading a persisted snapshot
	// (see persist_frozen.go); 0 for snapshots frozen from a live net.
	checksum uint32

	visit sync.Pool // *visitState, reused across traversals
}

// Checksum returns the CRC-32 of the snapshot file this net was loaded
// from, or 0 when the net was frozen in-process rather than loaded. Serving
// surfaces expose it so operators can match the running snapshot against
// the artifact that produced it.
func (f *FrozenNet) Checksum() uint32 { return f.checksum }

// csr is compressed-sparse-row adjacency grouped by edge kind: the edges of
// node id with kind k live in edges[off[id*numEdgeKinds+k] :
// off[id*numEdgeKinds+k+1]], and all kinds of one node are contiguous.
type csr struct {
	off   []int32
	edges []HalfEdge
}

func (c *csr) slice(id NodeID, kind EdgeKind, n int) []HalfEdge {
	if id < 0 || int(id) >= n || kind >= numEdgeKinds {
		return nil
	}
	base := int(id) * int(numEdgeKinds)
	if kind < 0 {
		return c.edges[c.off[base]:c.off[base+int(numEdgeKinds)]]
	}
	return c.edges[c.off[base+int(kind)]:c.off[base+int(kind)+1]]
}

// buildCSR converts slice-of-slices adjacency into kind-grouped CSR,
// preserving insertion order within each (node, kind) group.
func buildCSR(adj [][]HalfEdge) csr {
	n := len(adj)
	k := int(numEdgeKinds)
	off := make([]int32, n*k+1)
	total := 0
	for id, hes := range adj {
		for _, he := range hes {
			off[id*k+int(he.Kind)+1]++
			total++
		}
	}
	for i := 1; i < len(off); i++ {
		off[i] += off[i-1]
	}
	edges := make([]HalfEdge, total)
	cursor := make([]int32, n*k)
	for id, hes := range adj {
		for _, he := range hes {
			slot := id*k + int(he.Kind)
			edges[int(off[slot])+int(cursor[slot])] = he
			cursor[slot]++
		}
	}
	return csr{off: off, edges: edges}
}

// sortPostings weight-sorts every node's segment of one edge kind, so
// serving reads them best-first without sorting per query.
func (c *csr) sortPostings(n int, kind EdgeKind) {
	for id := 0; id < n; id++ {
		seg := c.slice(NodeID(id), kind, n)
		if len(seg) > 1 {
			sortHalfEdgesByWeight(seg)
		}
	}
}

// Freeze builds a read-optimized immutable snapshot of the net's current
// state. The snapshot shares nothing mutable with the live net: later
// AddNode/AddEdge calls do not affect it.
func (n *Net) Freeze() *FrozenNet {
	n.mu.RLock()
	defer n.mu.RUnlock()
	f := &FrozenNet{
		nodes:  append([]Node(nil), n.nodes...),
		byName: make(map[string][]NodeID, len(n.byName)),
		out:    buildCSR(n.outAdj),
		in:     buildCSR(n.inAdj),
		edges:  n.edges,
	}
	for name, ids := range n.byName {
		f.byName[name] = append([]NodeID(nil), ids...)
	}
	for _, nd := range f.nodes {
		f.byKind[nd.Kind] = append(f.byKind[nd.Kind], nd.ID)
	}
	nn := len(f.nodes)
	f.out.sortPostings(nn, EdgeItemEConcept)
	f.in.sortPostings(nn, EdgeItemEConcept)
	f.visit.New = func() any {
		return &visitState{gen: make([]uint32, nn)}
	}
	return f
}

// Node returns the node for id; ok is false for invalid ids.
func (f *FrozenNet) Node(id NodeID) (Node, bool) {
	if id < 0 || int(id) >= len(f.nodes) {
		return Node{}, false
	}
	return f.nodes[id], true
}

// NumNodes returns the node count.
func (f *FrozenNet) NumNodes() int { return len(f.nodes) }

// NumEdges returns the edge count.
func (f *FrozenNet) NumEdges() int { return f.edges }

// FindByName returns all nodes with the given surface form. The slice is a
// read-only view into the snapshot.
func (f *FrozenNet) FindByName(name string) []NodeID { return f.byName[name] }

// FindByNameKind returns nodes with the given name in one layer.
func (f *FrozenNet) FindByNameKind(name string, kind NodeKind) []NodeID {
	return f.AppendFindByNameKind(nil, name, kind)
}

// AppendFindByNameKind is FindByNameKind into a caller-owned buffer.
func (f *FrozenNet) AppendFindByNameKind(dst []NodeID, name string, kind NodeKind) []NodeID {
	for _, id := range f.byName[name] {
		if f.nodes[id].Kind == kind {
			dst = append(dst, id)
		}
	}
	return dst
}

// FirstByNameKind returns the first matching node or InvalidNode.
func (f *FrozenNet) FirstByNameKind(name string, kind NodeKind) NodeID {
	for _, id := range f.byName[name] {
		if f.nodes[id].Kind == kind {
			return id
		}
	}
	return InvalidNode
}

// FirstByNameKindBytes is FirstByNameKind keyed by a byte buffer. The
// map index with an inline string conversion compiles to an allocation-free
// lookup, so hot callers can assemble the key in a reused buffer.
func (f *FrozenNet) FirstByNameKindBytes(name []byte, kind NodeKind) NodeID {
	for _, id := range f.byName[string(name)] {
		if f.nodes[id].Kind == kind {
			return id
		}
	}
	return InvalidNode
}

// Out returns outgoing half-edges of a kind (all kinds if kind < 0) as a
// zero-allocation view into the CSR layout.
func (f *FrozenNet) Out(id NodeID, kind EdgeKind) []HalfEdge {
	return f.out.slice(id, kind, len(f.nodes))
}

// In returns incoming half-edges of a kind (all kinds if kind < 0) as a
// zero-allocation view into the CSR layout.
func (f *FrozenNet) In(id NodeID, kind EdgeKind) []HalfEdge {
	return f.in.slice(id, kind, len(f.nodes))
}

// NodesOfKind returns all node IDs in one layer, precomputed at freeze
// time. The slice is a read-only view into the snapshot.
func (f *FrozenNet) NodesOfKind(kind NodeKind) []NodeID {
	if kind < 0 || kind >= numKinds {
		return nil
	}
	return f.byKind[kind]
}

// ItemsForEConcept returns items associated with an e-commerce concept,
// best-weight first, up to limit (limit <= 0 means all). The postings were
// sorted at freeze time, so this is a bounds check and a slice window.
func (f *FrozenNet) ItemsForEConcept(id NodeID, limit int) []HalfEdge {
	items := f.In(id, EdgeItemEConcept)
	if limit > 0 && len(items) > limit {
		items = items[:limit]
	}
	return items
}

// AppendItemsForEConcept is ItemsForEConcept into a caller-owned buffer.
func (f *FrozenNet) AppendItemsForEConcept(dst []HalfEdge, id NodeID, limit int) []HalfEdge {
	return append(dst, f.ItemsForEConcept(id, limit)...)
}

// EConceptsForItem returns the e-commerce concepts an item serves,
// best-weight first, up to limit (limit <= 0 means all).
func (f *FrozenNet) EConceptsForItem(id NodeID, limit int) []HalfEdge {
	out := f.Out(id, EdgeItemEConcept)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// AppendEConceptsForItem is EConceptsForItem into a caller-owned buffer.
func (f *FrozenNet) AppendEConceptsForItem(dst []HalfEdge, id NodeID, limit int) []HalfEdge {
	return append(dst, f.EConceptsForItem(id, limit)...)
}

// PrimitivesForEConcept returns the primitive concepts interpreting an
// e-commerce concept.
func (f *FrozenNet) PrimitivesForEConcept(id NodeID) []HalfEdge {
	return f.Out(id, EdgeInterpretedBy)
}

// visitState is a reusable BFS scratchpad: gen[v] == epoch marks v visited
// in the current traversal, so clearing between traversals is a single
// epoch increment instead of a map allocation or an O(n) wipe.
type visitState struct {
	gen   []uint32
	epoch uint32
	queue []frontierEntry
}

type frontierEntry struct {
	id    NodeID
	depth int32
}

// next advances the epoch, wiping the visited set in O(1); on the (rare)
// uint32 wraparound it clears the array to stay sound.
func (v *visitState) next() {
	v.epoch++
	if v.epoch == 0 {
		for i := range v.gen {
			v.gen[i] = 0
		}
		v.epoch = 1
	}
	v.queue = v.queue[:0]
}

// traverse runs the isA/instanceOf BFS over one CSR direction. When target
// is a valid node it stops early and reports reachability; otherwise it
// appends visited ids (excluding start, BFS order) to dst. dst is returned
// unchanged for invalid start ids.
func (f *FrozenNet) traverse(adj *csr, start NodeID, maxDepth int, target NodeID, dst []NodeID, collect bool) ([]NodeID, bool) {
	if start < 0 || int(start) >= len(f.nodes) {
		return dst, false
	}
	v := f.visit.Get().(*visitState)
	defer f.visit.Put(v)
	v.next()
	v.gen[start] = v.epoch
	v.queue = append(v.queue, frontierEntry{start, 0})
	n := len(f.nodes)
	for qi := 0; qi < len(v.queue); qi++ {
		cur := v.queue[qi]
		if maxDepth > 0 && int(cur.depth) >= maxDepth {
			continue
		}
		for _, kind := range [2]EdgeKind{EdgeIsA, EdgeInstanceOf} {
			for _, he := range adj.slice(cur.id, kind, n) {
				if v.gen[he.Peer] == v.epoch {
					continue
				}
				v.gen[he.Peer] = v.epoch
				if he.Peer == target {
					return dst, true
				}
				if collect {
					dst = append(dst, he.Peer)
				}
				v.queue = append(v.queue, frontierEntry{he.Peer, cur.depth + 1})
			}
		}
	}
	return dst, false
}

// Ancestors walks EdgeIsA/EdgeInstanceOf upward from id (BFS) up to
// maxDepth levels (maxDepth <= 0 means unlimited) and returns the visited
// ancestor IDs in traversal order, excluding id itself.
func (f *FrozenNet) Ancestors(id NodeID, maxDepth int) []NodeID {
	out, _ := f.traverse(&f.out, id, maxDepth, InvalidNode, nil, true)
	return out
}

// AppendAncestors is Ancestors into a caller-owned buffer: the BFS runs on
// the pooled visited array and writes straight into dst, so a caller that
// recycles its buffer pays zero steady-state allocations.
func (f *FrozenNet) AppendAncestors(dst []NodeID, id NodeID, maxDepth int) []NodeID {
	dst, _ = f.traverse(&f.out, id, maxDepth, InvalidNode, dst, true)
	return dst
}

// Descendants walks EdgeIsA/EdgeInstanceOf downward (incoming edges).
func (f *FrozenNet) Descendants(id NodeID, maxDepth int) []NodeID {
	out, _ := f.traverse(&f.in, id, maxDepth, InvalidNode, nil, true)
	return out
}

// AppendDescendants is Descendants into a caller-owned buffer.
func (f *FrozenNet) AppendDescendants(dst []NodeID, id NodeID, maxDepth int) []NodeID {
	dst, _ = f.traverse(&f.in, id, maxDepth, InvalidNode, dst, true)
	return dst
}

// IsAncestor reports whether anc is reachable upward from id. It allocates
// nothing in steady state: the BFS runs on a pooled visited array and stops
// as soon as anc is found.
func (f *FrozenNet) IsAncestor(id, anc NodeID) bool {
	if anc < 0 || int(anc) >= len(f.nodes) || id == anc {
		return false
	}
	_, found := f.traverse(&f.out, id, 0, anc, nil, false)
	return found
}

// ComputeStats summarizes the snapshot the way (*Net).ComputeStats does.
func (f *FrozenNet) ComputeStats() Stats {
	s := Stats{
		Nodes:           len(f.nodes),
		Edges:           f.edges,
		PerKind:         make(map[string]int),
		PrimitivesByDom: make(map[string]int),
		EdgesByKind:     make(map[string]int),
	}
	items := len(f.byKind[KindItem])
	econcepts := len(f.byKind[KindEConcept])
	var itemPrim, itemEcpt, ecptPrim int
	for id, nd := range f.nodes {
		s.PerKind[nd.Kind.String()]++
		if nd.Kind == KindPrimitive {
			s.PrimitivesByDom[nd.Domain]++
		}
		for _, he := range f.out.slice(NodeID(id), -1, len(f.nodes)) {
			s.EdgesByKind[he.Kind.String()]++
			switch he.Kind {
			case EdgeIsA:
				switch nd.Kind {
				case KindPrimitive:
					s.IsAPrimitive++
				case KindEConcept:
					s.IsAEConcept++
				}
			case EdgeItemPrimitive:
				itemPrim++
			case EdgeItemEConcept:
				itemEcpt++
			case EdgeInterpretedBy:
				ecptPrim++
			}
		}
	}
	if items > 0 {
		s.AvgPrimitivesPerItem = float64(itemPrim) / float64(items)
		s.AvgEConceptsPerItem = float64(itemEcpt) / float64(items)
	}
	if econcepts > 0 {
		s.AvgItemsPerEConcept = float64(itemEcpt) / float64(econcepts)
		s.AvgPrimsPerEConcept = float64(ecptPrim) / float64(econcepts)
	}
	return s
}
