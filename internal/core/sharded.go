package core

import (
	"fmt"
	"sync"

	"alicoco/internal/faultfs"
	"alicoco/internal/par"
)

// ShardSet serves a net partitioned into N independently frozen shards (see
// FreezeShards) as one Reader. The partition is a contiguous node-ID range
// split with a fixed stride, so every point lookup — Node, Out, In, the
// concept-card postings — routes to its owning shard with one division and
// stays a zero-allocation CSR slice; only name resolution (scanned across
// shards in ascending order, which reproduces whole-net insertion order)
// and the isA/instanceOf traversals (run at the set level so they can cross
// shard boundaries) touch more than one shard.
//
// A ShardSet is immutable after NewShardSet and safe for unlimited
// concurrent use, like the FrozenNets it wraps. Reloading one shard means
// building a new ShardSet sharing the unchanged shard pointers and swapping
// it in atomically — readers pinned to the old set keep a consistent view.
type ShardSet struct {
	shards []*FrozenNet
	stride int
	total  int
	edges  int

	// byKind concatenates the shards' per-layer indexes in shard order at
	// construction, so NodesOfKind stays a read-only view like FrozenNet's.
	byKind [numKinds][]NodeID

	visit sync.Pool // *visitState with gen sized to total, for cross-shard BFS
}

// NewShardSet assembles frozen shards into one serving view. The shards
// must be the complete, in-order output of one FreezeShards partition (or
// per-shard reloads of it): same declared total, contiguous bases matching
// the stride layout. Any mismatch is an assembly bug or a manifest/file
// mix-up, and is rejected rather than served.
func NewShardSet(shards []*FrozenNet) (*ShardSet, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shardset: no shards")
	}
	for i, sh := range shards {
		if sh == nil {
			return nil, fmt.Errorf("shardset: shard %d is nil", i)
		}
	}
	total := shards[0].total
	stride := ShardStride(total, len(shards))
	for i, sh := range shards {
		if sh.total != total {
			return nil, fmt.Errorf("shardset: shard %d declares total %d, shard 0 declares %d", i, sh.total, total)
		}
		wantBase := min(i*stride, total)
		wantLen := min(wantBase+stride, total) - wantBase
		if int(sh.base) != wantBase || len(sh.nodes) != wantLen {
			return nil, fmt.Errorf("shardset: shard %d covers [%d,%d), want [%d,%d)",
				i, sh.base, int(sh.base)+len(sh.nodes), wantBase, wantBase+wantLen)
		}
	}
	s := &ShardSet{shards: shards, stride: stride, total: total}
	for _, sh := range shards {
		s.edges += sh.edges
	}
	for k := 0; k < int(numKinds); k++ {
		n := 0
		for _, sh := range shards {
			n += len(sh.byKind[k])
		}
		if n == 0 {
			continue
		}
		ids := make([]NodeID, 0, n)
		for _, sh := range shards {
			ids = append(ids, sh.byKind[k]...)
		}
		s.byKind[k] = ids
	}
	s.visit.New = func() any {
		return &visitState{gen: make([]uint32, total)}
	}
	return s, nil
}

// NumShards returns the shard count of the partition.
func (s *ShardSet) NumShards() int { return len(s.shards) }

// Shard returns shard i (panics when out of range, like slice indexing).
func (s *ShardSet) Shard(i int) *FrozenNet { return s.shards[i] }

// Shards returns the shard list as a read-only view.
func (s *ShardSet) Shards() []*FrozenNet { return s.shards }

// Stride returns the node count each non-trailing shard owns.
func (s *ShardSet) Stride() int { return s.stride }

// owner returns the shard owning a global node ID, or nil for out-of-range
// ids. Crossing into the owning shard is a query-time fault-injection
// boundary (faultfs.QueryProbe — one atomic load when nothing is armed):
// it is where chaos drills make one shard slow, and where a deadline-bound
// caller's next ctx check abandons admitted-but-doomed work.
func (s *ShardSet) owner(id NodeID) *FrozenNet {
	if id < 0 || int(id) >= s.total {
		return nil
	}
	shard := int(id) / s.stride
	faultfs.QueryProbe(shard)
	return s.shards[shard]
}

// Node returns the node for id; ok is false for invalid ids.
func (s *ShardSet) Node(id NodeID) (Node, bool) {
	sh := s.owner(id)
	if sh == nil {
		return Node{}, false
	}
	return sh.nodes[int(id)-int(sh.base)], true
}

// NumNodes returns the node count across all shards.
func (s *ShardSet) NumNodes() int { return s.total }

// NumEdges returns the edge count across all shards.
func (s *ShardSet) NumEdges() int { return s.edges }

// FindByName returns all nodes with the given surface form, in whole-net
// insertion order. When one shard holds every match — the common case — the
// result is that shard's read-only view and the call allocates nothing;
// only names straddling a shard boundary pay for a merged copy.
func (s *ShardSet) FindByName(name string) []NodeID {
	var single []NodeID
	n, hits := 0, 0
	for i, sh := range s.shards {
		faultfs.QueryProbe(i)
		if ids := sh.byName[name]; len(ids) > 0 {
			single = ids
			n += len(ids)
			hits++
		}
	}
	if hits <= 1 {
		return single
	}
	merged := make([]NodeID, 0, n)
	for _, sh := range s.shards {
		merged = append(merged, sh.byName[name]...)
	}
	return merged
}

// FindByNameKind returns nodes with the given name in one layer.
func (s *ShardSet) FindByNameKind(name string, kind NodeKind) []NodeID {
	return s.AppendFindByNameKind(nil, name, kind)
}

// AppendFindByNameKind is FindByNameKind into a caller-owned buffer.
func (s *ShardSet) AppendFindByNameKind(dst []NodeID, name string, kind NodeKind) []NodeID {
	for i, sh := range s.shards {
		faultfs.QueryProbe(i)
		dst = sh.AppendFindByNameKind(dst, name, kind)
	}
	return dst
}

// FirstByNameKind returns the first matching node or InvalidNode. Shards
// are scanned in ascending order, which reproduces whole-net insertion
// order because node IDs are assigned sequentially.
func (s *ShardSet) FirstByNameKind(name string, kind NodeKind) NodeID {
	for i, sh := range s.shards {
		faultfs.QueryProbe(i)
		if id := sh.FirstByNameKind(name, kind); id != InvalidNode {
			return id
		}
	}
	return InvalidNode
}

// FirstByNameKindBytes is FirstByNameKind keyed by a caller-owned byte
// buffer; each per-shard probe is the allocation-free map lookup, so the
// scatter costs N map probes and zero allocations.
func (s *ShardSet) FirstByNameKindBytes(name []byte, kind NodeKind) NodeID {
	for i, sh := range s.shards {
		faultfs.QueryProbe(i)
		if id := sh.FirstByNameKindBytes(name, kind); id != InvalidNode {
			return id
		}
	}
	return InvalidNode
}

// Out returns outgoing half-edges of a kind (all kinds if kind < 0), served
// as a zero-allocation view from the owning shard.
func (s *ShardSet) Out(id NodeID, kind EdgeKind) []HalfEdge {
	sh := s.owner(id)
	if sh == nil {
		return nil
	}
	return sh.out.slice(NodeID(int(id)-int(sh.base)), kind, len(sh.nodes))
}

// In returns incoming half-edges of a kind (all kinds if kind < 0), served
// as a zero-allocation view from the owning shard.
func (s *ShardSet) In(id NodeID, kind EdgeKind) []HalfEdge {
	sh := s.owner(id)
	if sh == nil {
		return nil
	}
	return sh.in.slice(NodeID(int(id)-int(sh.base)), kind, len(sh.nodes))
}

// NodesOfKind returns all node IDs in one layer as a read-only view,
// concatenated across shards at construction time.
func (s *ShardSet) NodesOfKind(kind NodeKind) []NodeID {
	if kind < 0 || kind >= numKinds {
		return nil
	}
	return s.byKind[kind]
}

// ItemsForEConcept returns items associated with an e-commerce concept,
// best-weight first, up to limit (limit <= 0 means all). A node's full
// posting list lives in its owning shard, so this is the same slice window
// as the unsharded read.
func (s *ShardSet) ItemsForEConcept(id NodeID, limit int) []HalfEdge {
	items := s.In(id, EdgeItemEConcept)
	if limit > 0 && len(items) > limit {
		items = items[:limit]
	}
	return items
}

// AppendItemsForEConcept is ItemsForEConcept into a caller-owned buffer.
func (s *ShardSet) AppendItemsForEConcept(dst []HalfEdge, id NodeID, limit int) []HalfEdge {
	return append(dst, s.ItemsForEConcept(id, limit)...)
}

// EConceptsForItem returns the e-commerce concepts an item serves,
// best-weight first, up to limit (limit <= 0 means all).
func (s *ShardSet) EConceptsForItem(id NodeID, limit int) []HalfEdge {
	out := s.Out(id, EdgeItemEConcept)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// AppendEConceptsForItem is EConceptsForItem into a caller-owned buffer.
func (s *ShardSet) AppendEConceptsForItem(dst []HalfEdge, id NodeID, limit int) []HalfEdge {
	return append(dst, s.EConceptsForItem(id, limit)...)
}

// PrimitivesForEConcept returns the primitive concepts interpreting an
// e-commerce concept.
func (s *ShardSet) PrimitivesForEConcept(id NodeID) []HalfEdge {
	return s.Out(id, EdgeInterpretedBy)
}

// traverse is the cross-shard isA/instanceOf BFS: same visit order as
// (*FrozenNet).traverse on the unsharded net — the frontier carries global
// IDs and each expansion reads the owning shard's CSR — but the visited set
// spans the whole ID space, so walks cross shard boundaries freely. dir
// selects the out (ancestors) or in (descendants) adjacency.
func (s *ShardSet) traverse(dir int, start NodeID, maxDepth int, target NodeID, dst []NodeID, collect bool) ([]NodeID, bool) {
	if s.owner(start) == nil {
		return dst, false
	}
	v := s.visit.Get().(*visitState)
	defer s.visit.Put(v)
	v.next()
	v.gen[start] = v.epoch
	v.queue = append(v.queue, frontierEntry{start, 0})
	for qi := 0; qi < len(v.queue); qi++ {
		cur := v.queue[qi]
		if maxDepth > 0 && int(cur.depth) >= maxDepth {
			continue
		}
		shard := int(cur.id) / s.stride
		faultfs.QueryProbe(shard)
		sh := s.shards[shard]
		adj := &sh.out
		if dir != 0 {
			adj = &sh.in
		}
		lid := NodeID(int(cur.id) - int(sh.base))
		for _, kind := range [2]EdgeKind{EdgeIsA, EdgeInstanceOf} {
			for _, he := range adj.slice(lid, kind, len(sh.nodes)) {
				if v.gen[he.Peer] == v.epoch {
					continue
				}
				v.gen[he.Peer] = v.epoch
				if he.Peer == target {
					return dst, true
				}
				if collect {
					dst = append(dst, he.Peer)
				}
				v.queue = append(v.queue, frontierEntry{he.Peer, cur.depth + 1})
			}
		}
	}
	return dst, false
}

// Ancestors walks EdgeIsA/EdgeInstanceOf upward from id (BFS) up to
// maxDepth levels (maxDepth <= 0 means unlimited), excluding id.
func (s *ShardSet) Ancestors(id NodeID, maxDepth int) []NodeID {
	out, _ := s.traverse(0, id, maxDepth, InvalidNode, nil, true)
	return out
}

// AppendAncestors is Ancestors into a caller-owned buffer.
func (s *ShardSet) AppendAncestors(dst []NodeID, id NodeID, maxDepth int) []NodeID {
	dst, _ = s.traverse(0, id, maxDepth, InvalidNode, dst, true)
	return dst
}

// Descendants walks EdgeIsA/EdgeInstanceOf downward (incoming edges).
func (s *ShardSet) Descendants(id NodeID, maxDepth int) []NodeID {
	out, _ := s.traverse(1, id, maxDepth, InvalidNode, nil, true)
	return out
}

// AppendDescendants is Descendants into a caller-owned buffer.
func (s *ShardSet) AppendDescendants(dst []NodeID, id NodeID, maxDepth int) []NodeID {
	dst, _ = s.traverse(1, id, maxDepth, InvalidNode, dst, true)
	return dst
}

// IsAncestor reports whether anc is reachable upward from id.
func (s *ShardSet) IsAncestor(id, anc NodeID) bool {
	if s.owner(anc) == nil || id == anc {
		return false
	}
	_, found := s.traverse(0, id, 0, anc, nil, false)
	return found
}

// ComputeStats summarizes the whole partition: the per-shard passes run in
// parallel (each shard only reads its own storage), then merge.
func (s *ShardSet) ComputeStats() Stats {
	perShard := make([]Stats, len(s.shards))
	par.For(0, len(s.shards), func(i int) {
		perShard[i] = s.shards[i].ComputeStats()
	})
	m := Stats{
		PerKind:         make(map[string]int),
		PrimitivesByDom: make(map[string]int),
		EdgesByKind:     make(map[string]int),
	}
	for _, ps := range perShard {
		m.Nodes += ps.Nodes
		m.Edges += ps.Edges
		m.IsAPrimitive += ps.IsAPrimitive
		m.IsAEConcept += ps.IsAEConcept
		for k, v := range ps.PerKind {
			m.PerKind[k] += v
		}
		for k, v := range ps.PrimitivesByDom {
			m.PrimitivesByDom[k] += v
		}
		for k, v := range ps.EdgesByKind {
			m.EdgesByKind[k] += v
		}
	}
	items := m.PerKind[KindItem.String()]
	econcepts := m.PerKind[KindEConcept.String()]
	itemPrim := m.EdgesByKind[EdgeItemPrimitive.String()]
	itemEcpt := m.EdgesByKind[EdgeItemEConcept.String()]
	ecptPrim := m.EdgesByKind[EdgeInterpretedBy.String()]
	if items > 0 {
		m.AvgPrimitivesPerItem = float64(itemPrim) / float64(items)
		m.AvgEConceptsPerItem = float64(itemEcpt) / float64(items)
	}
	if econcepts > 0 {
		m.AvgItemsPerEConcept = float64(itemEcpt) / float64(econcepts)
		m.AvgPrimsPerEConcept = float64(ecptPrim) / float64(econcepts)
	}
	return m
}
