package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// shardCounts are the partition widths the equivalence suite runs: the N=1
// degenerate case, counts that divide the net unevenly, and counts larger
// than some test nets (empty trailing shards).
var shardCounts = []int{1, 2, 3, 5, 16}

func newShardSet(t testing.TB, n *Net, count int) *ShardSet {
	t.Helper()
	s, err := NewShardSet(n.FreezeShards(count))
	if err != nil {
		t.Fatalf("NewShardSet(%d): %v", count, err)
	}
	return s
}

// TestShardSetEquivalenceRandomized proves the scatter-gather Reader is
// indistinguishable from the whole-net FrozenNet: every Reader method, on
// randomized nets partitioned N ways, must return exactly what the
// unsharded snapshot returns — same elements, same order — because both
// sort postings at freeze time from identical per-node segments and both
// expand BFS frontiers in the same order.
func TestShardSetEquivalenceRandomized(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		n := buildRandomNet(t, seed)
		f := n.Freeze()
		for _, count := range shardCounts {
			s := newShardSet(t, n, count)
			ctx := fmt.Sprintf("seed %d shards %d", seed, count)
			if s.NumNodes() != f.NumNodes() || s.NumEdges() != f.NumEdges() {
				t.Fatalf("%s: counts differ (%d/%d nodes, %d/%d edges)",
					ctx, s.NumNodes(), f.NumNodes(), s.NumEdges(), f.NumEdges())
			}
			for id := NodeID(-2); int(id) < f.NumNodes()+2; id++ {
				fn, fok := f.Node(id)
				sn, sok := s.Node(id)
				if fok != sok || fn != sn {
					t.Fatalf("%s: Node(%d) differs", ctx, id)
				}
				for kind := EdgeKind(-1); kind < numEdgeKinds; kind++ {
					if !edgesEqual(f.Out(id, kind), s.Out(id, kind)) {
						t.Fatalf("%s: Out(%d,%v) differs:\nfrozen  %v\nsharded %v",
							ctx, id, kind, f.Out(id, kind), s.Out(id, kind))
					}
					if !edgesEqual(f.In(id, kind), s.In(id, kind)) {
						t.Fatalf("%s: In(%d,%v) differs", ctx, id, kind)
					}
				}
				for _, depth := range []int{0, 1, 2} {
					if !idsEqual(f.Ancestors(id, depth), s.Ancestors(id, depth)) {
						t.Fatalf("%s: Ancestors(%d,%d) differ:\nfrozen  %v\nsharded %v",
							ctx, id, depth, f.Ancestors(id, depth), s.Ancestors(id, depth))
					}
					if !idsEqual(f.Descendants(id, depth), s.Descendants(id, depth)) {
						t.Fatalf("%s: Descendants(%d,%d) differ", ctx, id, depth)
					}
				}
				for anc := NodeID(0); int(anc) < f.NumNodes(); anc += 3 {
					if f.IsAncestor(id, anc) != s.IsAncestor(id, anc) {
						t.Fatalf("%s: IsAncestor(%d,%d) differs", ctx, id, anc)
					}
				}
			}
			for kind := NodeKind(0); kind < numKinds; kind++ {
				if !idsEqual(f.NodesOfKind(kind), s.NodesOfKind(kind)) {
					t.Fatalf("%s: NodesOfKind(%v) differ", ctx, kind)
				}
			}
			for _, ec := range f.NodesOfKind(KindEConcept) {
				for _, limit := range []int{0, 1, 3} {
					if !edgesEqual(f.ItemsForEConcept(ec, limit), s.ItemsForEConcept(ec, limit)) {
						t.Fatalf("%s: ItemsForEConcept(%d,%d) differs", ctx, ec, limit)
					}
				}
				if !edgesEqual(f.PrimitivesForEConcept(ec), s.PrimitivesForEConcept(ec)) {
					t.Fatalf("%s: PrimitivesForEConcept(%d) differs", ctx, ec)
				}
			}
			for _, it := range f.NodesOfKind(KindItem) {
				if !edgesEqual(f.EConceptsForItem(it, 5), s.EConceptsForItem(it, 5)) {
					t.Fatalf("%s: EConceptsForItem(%d) differs", ctx, it)
				}
			}
			for id := NodeID(0); int(id) < f.NumNodes(); id++ {
				nd, _ := f.Node(id)
				if !idsEqual(f.FindByName(nd.Name), s.FindByName(nd.Name)) {
					t.Fatalf("%s: FindByName(%q) differs", ctx, nd.Name)
				}
				if !idsEqual(f.FindByNameKind(nd.Name, nd.Kind), s.FindByNameKind(nd.Name, nd.Kind)) {
					t.Fatalf("%s: FindByNameKind(%q) differs", ctx, nd.Name)
				}
				if f.FirstByNameKind(nd.Name, nd.Kind) != s.FirstByNameKind(nd.Name, nd.Kind) {
					t.Fatalf("%s: FirstByNameKind(%q) differs", ctx, nd.Name)
				}
				if f.FirstByNameKindBytes([]byte(nd.Name), nd.Kind) != s.FirstByNameKindBytes([]byte(nd.Name), nd.Kind) {
					t.Fatalf("%s: FirstByNameKindBytes(%q) differs", ctx, nd.Name)
				}
			}
			if f.FindByName("no such name") != nil || s.FindByName("no such name") != nil {
				t.Fatalf("%s: missing name should resolve to nil", ctx)
			}
		}
	}
}

// TestShardSetAppendVariants: the Append* scatter methods write after the
// caller's prefix exactly like the unsharded ones.
func TestShardSetAppendVariants(t *testing.T) {
	n := buildRandomNet(t, 31)
	f := n.Freeze()
	s := newShardSet(t, n, 4)
	prefix := []NodeID{-7}
	for id := NodeID(0); int(id) < f.NumNodes(); id++ {
		nd, _ := f.Node(id)
		if got, want := s.AppendAncestors(append([]NodeID(nil), prefix...), id, 0),
			f.AppendAncestors(append([]NodeID(nil), prefix...), id, 0); !idsEqual(got, want) {
			t.Fatalf("AppendAncestors(%d): got %v want %v", id, got, want)
		}
		if got, want := s.AppendDescendants(append([]NodeID(nil), prefix...), id, 2),
			f.AppendDescendants(append([]NodeID(nil), prefix...), id, 2); !idsEqual(got, want) {
			t.Fatalf("AppendDescendants(%d): got %v want %v", id, got, want)
		}
		if got, want := s.AppendItemsForEConcept(nil, id, 4),
			f.AppendItemsForEConcept(nil, id, 4); !edgesEqual(got, want) {
			t.Fatalf("AppendItemsForEConcept(%d) differs", id)
		}
		if got, want := s.AppendEConceptsForItem(nil, id, 4),
			f.AppendEConceptsForItem(nil, id, 4); !edgesEqual(got, want) {
			t.Fatalf("AppendEConceptsForItem(%d) differs", id)
		}
		if got, want := s.AppendFindByNameKind(append([]NodeID(nil), prefix...), nd.Name, nd.Kind),
			f.AppendFindByNameKind(append([]NodeID(nil), prefix...), nd.Name, nd.Kind); !idsEqual(got, want) {
			t.Fatalf("AppendFindByNameKind(%q) differs", nd.Name)
		}
	}
}

// TestShardSetStatsMatchFrozen: merged per-shard stats equal the whole-net
// pass, including the recomputed averages.
func TestShardSetStatsMatchFrozen(t *testing.T) {
	n := buildRandomNet(t, 7)
	fs := n.Freeze().ComputeStats()
	for _, count := range shardCounts {
		ss := newShardSet(t, n, count).ComputeStats()
		if fs.Nodes != ss.Nodes || fs.Edges != ss.Edges ||
			fs.IsAPrimitive != ss.IsAPrimitive || fs.IsAEConcept != ss.IsAEConcept ||
			fs.AvgPrimitivesPerItem != ss.AvgPrimitivesPerItem ||
			fs.AvgEConceptsPerItem != ss.AvgEConceptsPerItem ||
			fs.AvgItemsPerEConcept != ss.AvgItemsPerEConcept ||
			fs.AvgPrimsPerEConcept != ss.AvgPrimsPerEConcept {
			t.Fatalf("shards %d: stats differ:\nfrozen  %+v\nsharded %+v", count, fs, ss)
		}
		for _, pair := range []struct{ f, s map[string]int }{
			{fs.PerKind, ss.PerKind}, {fs.PrimitivesByDom, ss.PrimitivesByDom}, {fs.EdgesByKind, ss.EdgesByKind},
		} {
			if len(pair.f) != len(pair.s) {
				t.Fatalf("shards %d: stats map sizes differ", count)
			}
			for k, v := range pair.f {
				if pair.s[k] != v {
					t.Fatalf("shards %d: stats map key %q differs", count, k)
				}
			}
		}
	}
}

// TestShardIsShardLocal: one shard out of a partition answers only for its
// own ID range and never follows edges out of it.
func TestShardIsShardLocal(t *testing.T) {
	n := buildRandomNet(t, 11)
	shards := n.FreezeShards(3)
	sh := shards[1]
	if sh.Base() == 0 || sh.NumNodes() == 0 {
		t.Fatalf("unexpected partition: base %d, %d nodes", sh.Base(), sh.NumNodes())
	}
	if sh.TotalNodes() != n.NumNodes() {
		t.Fatalf("TotalNodes %d, want %d", sh.TotalNodes(), n.NumNodes())
	}
	if _, ok := sh.Node(0); ok {
		t.Fatal("shard 1 resolved shard 0's node")
	}
	if _, ok := sh.Node(sh.Base()); !ok {
		t.Fatal("shard 1 did not resolve its own base node")
	}
	if sh.Out(0, -1) != nil || sh.In(0, -1) != nil {
		t.Fatal("shard 1 returned adjacency for shard 0's node")
	}
	for lid := 0; lid < sh.NumNodes(); lid++ {
		id := sh.Base() + NodeID(lid)
		for _, anc := range sh.Ancestors(id, 0) {
			if int(anc) < int(sh.Base()) || int(anc) >= int(sh.Base())+sh.NumNodes() {
				t.Fatalf("shard-local Ancestors(%d) escaped the shard: %d", id, anc)
			}
		}
	}
}

// TestNewShardSetValidation: assemblies that are not the complete in-order
// output of one partition are rejected.
func TestNewShardSetValidation(t *testing.T) {
	n := buildRandomNet(t, 13)
	shards := n.FreezeShards(4)
	cases := []struct {
		name    string
		shards  []*FrozenNet
		errWant string
	}{
		{"empty", nil, "no shards"},
		{"nil shard", []*FrozenNet{shards[0], nil}, "nil"},
		{"missing shard", shards[:3], "covers"},
		{"out of order", []*FrozenNet{shards[1], shards[0], shards[2], shards[3]}, "covers"},
		{"duplicate shard", []*FrozenNet{shards[0], shards[0], shards[2], shards[3]}, "covers"},
		{"foreign total", []*FrozenNet{shards[0], buildRandomNet(t, 14).FreezeShards(4)[1], shards[2], shards[3]}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewShardSet(tc.shards)
			if err == nil {
				t.Fatal("invalid shard assembly accepted")
			}
			if tc.errWant != "" && !strings.Contains(err.Error(), tc.errWant) {
				t.Fatalf("error %q does not mention %q", err, tc.errWant)
			}
		})
	}
	if _, err := NewShardSet(shards); err != nil {
		t.Fatalf("valid assembly rejected: %v", err)
	}
}

// TestShardSaveLoadRoundTrip: each shard persists and reloads on its own
// (format v2 carries base/total), and the reloaded set still matches the
// unsharded net.
func TestShardSaveLoadRoundTrip(t *testing.T) {
	n := buildRandomNet(t, 21)
	f := n.Freeze()
	shards := n.FreezeShards(3)
	reloaded := make([]*FrozenNet, len(shards))
	for i, sh := range shards {
		var buf bytes.Buffer
		sum, err := sh.SaveSum(&buf)
		if err != nil {
			t.Fatalf("shard %d save: %v", i, err)
		}
		r, err := LoadFrozen(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("shard %d load: %v", i, err)
		}
		if r.Checksum() != sum {
			t.Fatalf("shard %d: SaveSum returned %08x, loader recorded %08x", i, sum, r.Checksum())
		}
		if r.Base() != sh.Base() || r.NumNodes() != sh.NumNodes() || r.TotalNodes() != sh.TotalNodes() {
			t.Fatalf("shard %d: geometry changed across round trip", i)
		}
		reloaded[i] = r
	}
	s, err := NewShardSet(reloaded)
	if err != nil {
		t.Fatalf("NewShardSet(reloaded): %v", err)
	}
	for id := NodeID(0); int(id) < f.NumNodes(); id++ {
		if !edgesEqual(f.Out(id, -1), s.Out(id, -1)) || !edgesEqual(f.In(id, -1), s.In(id, -1)) {
			t.Fatalf("adjacency of %d differs after round trip", id)
		}
		if !idsEqual(f.Ancestors(id, 0), s.Ancestors(id, 0)) {
			t.Fatalf("Ancestors(%d) differ after round trip", id)
		}
	}
}

// TestShardedReadZeroAllocs is the scatter-gather alloc guard: every hot
// point lookup on an N=4 set must stay allocation-free, like the unsharded
// reads it routes to.
func TestShardedReadZeroAllocs(t *testing.T) {
	n := buildRandomNet(t, 5)
	s := newShardSet(t, n, 4)
	var ec, item NodeID = InvalidNode, InvalidNode
	if ids := s.NodesOfKind(KindEConcept); len(ids) > 0 {
		ec = ids[len(ids)/2]
	}
	if ids := s.NodesOfKind(KindItem); len(ids) > 0 {
		item = ids[len(ids)/2]
	}
	name := []byte("concept0")
	zeroAllocs(t, "ShardSet.Node", func() { s.Node(item) })
	zeroAllocs(t, "ShardSet.Out", func() { s.Out(ec, EdgeInterpretedBy) })
	zeroAllocs(t, "ShardSet.In", func() { s.In(ec, EdgeItemEConcept) })
	zeroAllocs(t, "ShardSet.ItemsForEConcept", func() { s.ItemsForEConcept(ec, 10) })
	zeroAllocs(t, "ShardSet.EConceptsForItem", func() { s.EConceptsForItem(item, 10) })
	zeroAllocs(t, "ShardSet.FindByName", func() { s.FindByName("concept0") })
	zeroAllocs(t, "ShardSet.FirstByNameKindBytes", func() { s.FirstByNameKindBytes(name, KindEConcept) })
	zeroAllocs(t, "ShardSet.NodesOfKind", func() { s.NodesOfKind(KindItem) })
	zeroAllocs(t, "ShardSet.IsAncestor", func() { s.IsAncestor(item, ec) })
	dst := make([]NodeID, 0, s.NumNodes())
	zeroAllocs(t, "ShardSet.AppendAncestors", func() { dst = s.AppendAncestors(dst[:0], item, 0) })
	zeroAllocs(t, "ShardSet.AppendDescendants", func() { dst = s.AppendDescendants(dst[:0], ec, 0) })
	edges := make([]HalfEdge, 0, s.NumNodes())
	zeroAllocs(t, "ShardSet.AppendItemsForEConcept", func() { edges = s.AppendItemsForEConcept(edges[:0], ec, 0) })
}

// TestShardSetConcurrentReads hammers the scatter-gather paths from many
// goroutines; run with -race (the shared visit pool and the per-shard pools
// are the parts that could regress).
func TestShardSetConcurrentReads(t *testing.T) {
	n := buildRandomNet(t, 99)
	s := newShardSet(t, n, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := NodeID((g*31 + i) % s.NumNodes())
				s.Out(id, EdgeIsA)
				s.In(id, -1)
				s.Ancestors(id, 0)
				s.Descendants(id, 2)
				s.IsAncestor(id, NodeID(i%s.NumNodes()))
				s.ItemsForEConcept(id, 5)
				s.EConceptsForItem(id, 5)
				s.NodesOfKind(KindItem)
				nd, _ := s.Node(id)
				s.FindByName(nd.Name)
			}
		}(g)
	}
	wg.Wait()
}
