package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// ExportDOT writes a Graphviz rendering of the subgraph within maxDepth hops
// of root (all edge kinds, both directions), for inspecting neighborhoods of
// the net. maxDepth <= 0 exports just the root and its direct neighbors.
func (n *Net) ExportDOT(w io.Writer, root NodeID, maxDepth int) error {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if !n.valid(root) {
		return fmt.Errorf("core: ExportDOT: invalid root %d", root)
	}
	if maxDepth <= 0 {
		maxDepth = 1
	}
	type qe struct {
		id    NodeID
		depth int
	}
	include := map[NodeID]bool{root: true}
	queue := []qe{{root, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.depth >= maxDepth {
			continue
		}
		for _, adj := range [][]HalfEdge{n.outAdj[cur.id], n.inAdj[cur.id]} {
			for _, he := range adj {
				if !include[he.Peer] {
					include[he.Peer] = true
					queue = append(queue, qe{he.Peer, cur.depth + 1})
				}
			}
		}
	}
	ids := make([]NodeID, 0, len(include))
	for id := range include {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var b strings.Builder
	b.WriteString("digraph alicoco {\n  rankdir=BT;\n")
	shape := map[NodeKind]string{
		KindClass: "ellipse", KindPrimitive: "box", KindEConcept: "hexagon", KindItem: "note",
	}
	for _, id := range ids {
		nd := n.nodes[id]
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", id, nd.Kind.String()+": "+nd.Name, shape[nd.Kind])
	}
	for _, id := range ids {
		for _, he := range n.outAdj[id] {
			if !include[he.Peer] {
				continue
			}
			label := he.Kind.String()
			if he.Rel != "" {
				label += ":" + he.Rel
			}
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", id, he.Peer, label)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
