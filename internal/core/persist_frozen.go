package core

import (
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// Frozen snapshot persistence: a versioned binary format for FrozenNet
// itself, so cold start is a handful of bulk reads proportional to disk
// bandwidth — no re-indexing, no re-sorting, no Freeze() pass.
//
// Layout (all integers little-endian, str = u32 length + raw bytes):
//
// Version 2 makes a file self-describing as one shard of a partitioned net
// (see FreezeShards/ShardSet): it records the shard's base ID and the whole
// net's node count, and — because a shard's two adjacency directions hold
// different half-edge counts (a cross-shard edge's halves live in different
// files) — the out and in edge counts separately. A whole-net snapshot is
// the base=0, total=nodeCount case of the same layout.
//
//	magic   "ACFZ"
//	version u16
//	--- body, covered by the trailing CRC-32 (IEEE) ---
//	u8  numKinds      (must match this build)
//	u8  numEdgeKinds  (must match this build)
//	u32 nodeCount     (nodes this file holds)
//	u32 base          (first global node ID; IDs are base..base+nodeCount-1)
//	u32 totalNodes    (whole net's node count; peers are validated against it)
//	u32 outEdgeCount  (== len(out.edges))
//	u32 inEdgeCount   (== len(in.edges))
//	rel table: u32 count, count × str          (interned HalfEdge.Rel values)
//	nodes:     nodeCount × (u8 kind, str name, str domain)   (ID = base+index)
//	byName:    u32 entries, each str name + u32 cnt + cnt × u32 id
//	byKind:    numKinds × (u32 cnt + cnt × u32 id)
//	out CSR:   u32 offLen + offLen × u32 (bulk), u32 edgeCount + 16-byte records (bulk)
//	in  CSR:   same
//	--- trailer ---
//	u32 crc32 of body
//
// An edge record is 16 bytes: u32 peer | u32 (kind<<24 | relIndex) |
// u64 float64 bits of weight. Kind-grouped CSR order and the freeze-time
// weight-sorted postings are preserved byte-for-byte, so LoadFrozen never
// sorts.

const (
	frozenVersion = 2

	// maxFrozenElems bounds every count field in a snapshot; Save enforces
	// it at write time so every snapshot it produces is loadable, and
	// LoadFrozen rejects anything above it before allocating.
	maxFrozenElems = 1 << 27
	// maxFrozenStr bounds a single string length, both directions.
	maxFrozenStr = 1 << 20
	// frozenEdgeRecSize is the fixed on-disk size of one half-edge.
	frozenEdgeRecSize = 16
	// preallocElems caps how much capacity a claimed count reserves before
	// the stream has actually delivered that much data: slices grow with
	// genuine bytes, so a tiny corrupt file cannot trigger a huge
	// allocation (the checksum is only verifiable after the body).
	preallocElems = 1 << 16
)

// prealloc returns the initial capacity to reserve for a claimed element
// count, trusting the stream only up to preallocElems.
func prealloc(count int) int {
	if count > preallocElems {
		return preallocElems
	}
	return count
}

var frozenMagic = [4]byte{'A', 'C', 'F', 'Z'}

// fzWriter is a sticky-error little-endian writer.
type fzWriter struct {
	w   io.Writer
	err error
	b   [8]byte
}

func (fw *fzWriter) write(p []byte) {
	if fw.err != nil {
		return
	}
	_, fw.err = fw.w.Write(p)
}

func (fw *fzWriter) u8(v uint8) {
	fw.b[0] = v
	fw.write(fw.b[:1])
}

func (fw *fzWriter) u16(v uint16) {
	fw.b[0], fw.b[1] = byte(v), byte(v>>8)
	fw.write(fw.b[:2])
}

func (fw *fzWriter) u32(v uint32) {
	putU32(fw.b[:4], v)
	fw.write(fw.b[:4])
}

func (fw *fzWriter) str(s string) {
	fw.u32(uint32(len(s)))
	fw.write([]byte(s))
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// fzReader is a sticky-error little-endian reader. Every count it returns
// is pre-bounded so callers can allocate without trusting the stream.
type fzReader struct {
	r   io.Reader
	err error
	b   [8]byte
}

func (fr *fzReader) read(p []byte) {
	if fr.err != nil {
		return
	}
	if _, err := io.ReadFull(fr.r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		fr.err = err
	}
}

func (fr *fzReader) u8() uint8 {
	fr.read(fr.b[:1])
	return fr.b[0]
}

func (fr *fzReader) u16() uint16 {
	fr.read(fr.b[:2])
	return uint16(fr.b[0]) | uint16(fr.b[1])<<8
}

func (fr *fzReader) u32() uint32 {
	fr.read(fr.b[:4])
	return getU32(fr.b[:4])
}

// count reads a u32 element count and rejects anything above the sanity cap.
func (fr *fzReader) count(what string) int {
	v := fr.u32()
	if fr.err == nil && v > maxFrozenElems {
		fr.err = fmt.Errorf("%s count %d exceeds limit", what, v)
	}
	return int(v)
}

func (fr *fzReader) str() string {
	n := fr.u32()
	if fr.err == nil && n > maxFrozenStr {
		fr.err = fmt.Errorf("string length %d exceeds limit", n)
	}
	if fr.err != nil {
		return ""
	}
	buf := make([]byte, n)
	fr.read(buf)
	return string(buf)
}

// relTable interns the distinct HalfEdge.Rel strings of a snapshot so each
// edge record stores a 24-bit index instead of a string.
type relTable struct {
	rels []string
	idx  map[string]uint32
}

func buildRelTable(csrs ...*csr) (*relTable, error) {
	t := &relTable{idx: make(map[string]uint32)}
	for _, c := range csrs {
		for i := range c.edges {
			rel := c.edges[i].Rel
			if _, ok := t.idx[rel]; !ok {
				t.idx[rel] = uint32(len(t.rels))
				t.rels = append(t.rels, rel)
			}
		}
	}
	if len(t.rels) > 1<<24 {
		return nil, fmt.Errorf("core: frozen save: %d distinct rel strings exceed 24-bit index", len(t.rels))
	}
	for _, rel := range t.rels {
		if len(rel) > maxFrozenStr {
			return nil, fmt.Errorf("core: frozen save: rel string exceeds %d bytes", maxFrozenStr)
		}
	}
	return t, nil
}

// writeCSR emits one direction's offset array and edge records as two bulk
// writes.
func writeCSR(fw *fzWriter, c *csr, rels *relTable) {
	fw.u32(uint32(len(c.off)))
	offBuf := make([]byte, 4*len(c.off))
	for i, v := range c.off {
		putU32(offBuf[4*i:], uint32(v))
	}
	fw.write(offBuf)

	fw.u32(uint32(len(c.edges)))
	recBuf := make([]byte, frozenEdgeRecSize*len(c.edges))
	for i := range c.edges {
		he := &c.edges[i]
		rec := recBuf[frozenEdgeRecSize*i:]
		putU32(rec, uint32(he.Peer))
		putU32(rec[4:], uint32(he.Kind)<<24|rels.idx[he.Rel])
		w := math.Float64bits(he.Weight)
		putU32(rec[8:], uint32(w))
		putU32(rec[12:], uint32(w>>32))
	}
	fw.write(recBuf)
}

// readCSR reads one direction back and validates its structure: offsets
// monotone and consistent with the edge count, peers in range (against the
// whole net's node count — a shard's peers may live in other shards), each
// record's kind agreeing with the CSR group it sits in, rel indexes in
// range.
func readCSR(fr *fzReader, dir string, nodeCount, edgeCount, totalNodes int, rels []string) csr {
	var c csr
	offLen := fr.count(dir + " offset")
	wantOff := nodeCount*int(numEdgeKinds) + 1
	if fr.err == nil && offLen != wantOff {
		fr.err = fmt.Errorf("%s offset array length %d, want %d", dir, offLen, wantOff)
	}
	if fr.err != nil {
		return c
	}
	offBuf := make([]byte, 4*offLen)
	fr.read(offBuf)
	c.off = make([]int32, offLen)
	for i := range c.off {
		c.off[i] = int32(getU32(offBuf[4*i:]))
	}
	recs := fr.count(dir + " edge")
	if fr.err == nil && recs != edgeCount {
		fr.err = fmt.Errorf("%s edge count %d disagrees with header %d", dir, recs, edgeCount)
	}
	if fr.err == nil {
		if c.off[0] != 0 {
			fr.err = fmt.Errorf("%s offsets start at %d, want 0", dir, c.off[0])
		}
		for i := 1; i < len(c.off) && fr.err == nil; i++ {
			if c.off[i] < c.off[i-1] {
				fr.err = fmt.Errorf("%s offsets decrease at %d", dir, i)
			}
		}
		if fr.err == nil && int(c.off[len(c.off)-1]) != recs {
			fr.err = fmt.Errorf("%s offsets end at %d, want %d", dir, c.off[len(c.off)-1], recs)
		}
	}
	if fr.err != nil {
		return c
	}
	// Records are read in bounded chunks and appended, so the slice only
	// grows as fast as the stream actually delivers data.
	const chunkRecs = 1 << 15 // 512 KiB per read
	c.edges = make([]HalfEdge, 0, prealloc(recs))
	chunk := recs
	if chunk > chunkRecs {
		chunk = chunkRecs
	}
	recBuf := make([]byte, frozenEdgeRecSize*chunk)
	for done := 0; done < recs; {
		n := recs - done
		if n > chunkRecs {
			n = chunkRecs
		}
		fr.read(recBuf[:frozenEdgeRecSize*n])
		if fr.err != nil {
			return c
		}
		for i := 0; i < n; i++ {
			rec := recBuf[frozenEdgeRecSize*i:]
			peer := getU32(rec)
			kindRel := getU32(rec[4:])
			kind := EdgeKind(kindRel >> 24)
			relIdx := kindRel & 0xFFFFFF
			if int(peer) >= totalNodes {
				fr.err = fmt.Errorf("%s edge %d: peer %d out of range", dir, done+i, peer)
				return c
			}
			if int(relIdx) >= len(rels) {
				fr.err = fmt.Errorf("%s edge %d: rel index %d out of range", dir, done+i, relIdx)
				return c
			}
			c.edges = append(c.edges, HalfEdge{
				Peer:   NodeID(peer),
				Kind:   kind,
				Rel:    rels[relIdx],
				Weight: math.Float64frombits(uint64(getU32(rec[8:])) | uint64(getU32(rec[12:]))<<32),
			})
		}
		done += n
	}
	// Each record's kind must match the (node, kind) CSR group holding it.
	for slot := 0; slot < len(c.off)-1; slot++ {
		want := EdgeKind(slot % int(numEdgeKinds))
		for e := c.off[slot]; e < c.off[slot+1]; e++ {
			if c.edges[e].Kind != want {
				fr.err = fmt.Errorf("%s edge %d: kind %d disagrees with CSR group %d", dir, e, c.edges[e].Kind, want)
				return c
			}
		}
	}
	return c
}

// Save writes a versioned, checksummed binary snapshot of the frozen net
// (or one shard of it). The format round-trips through LoadFrozen without
// any rebuild work. Every limit LoadFrozen enforces is checked here first,
// so Save never produces a file its own loader would reject.
func (f *FrozenNet) Save(w io.Writer) error {
	_, err := f.SaveSum(w)
	return err
}

// SaveSum is Save that also returns the body CRC-32 it wrote — the same
// value LoadFrozen records as Checksum() — so multi-shard writers can build
// a manifest of per-shard checksums without re-reading the files.
func (f *FrozenNet) SaveSum(w io.Writer) (uint32, error) {
	if len(f.nodes) > maxFrozenElems {
		return 0, fmt.Errorf("core: frozen save: %d nodes exceed format limit %d", len(f.nodes), maxFrozenElems)
	}
	if f.total > maxFrozenElems {
		return 0, fmt.Errorf("core: frozen save: %d total nodes exceed format limit %d", f.total, maxFrozenElems)
	}
	if len(f.out.edges) > maxFrozenElems || len(f.in.edges) > maxFrozenElems {
		return 0, fmt.Errorf("core: frozen save: edge count exceeds format limit %d", maxFrozenElems)
	}
	for i := range f.nodes {
		if len(f.nodes[i].Name) > maxFrozenStr || len(f.nodes[i].Domain) > maxFrozenStr {
			return 0, fmt.Errorf("core: frozen save: node %d name/domain exceeds %d bytes", i, maxFrozenStr)
		}
	}
	head := fzWriter{w: w}
	head.write(frozenMagic[:])
	head.u16(frozenVersion)
	if head.err != nil {
		return 0, fmt.Errorf("core: frozen save: %w", head.err)
	}

	rels, err := buildRelTable(&f.out, &f.in)
	if err != nil {
		return 0, err
	}
	crc := crc32.NewIEEE()
	fw := fzWriter{w: io.MultiWriter(w, crc)}
	fw.u8(uint8(numKinds))
	fw.u8(uint8(numEdgeKinds))
	fw.u32(uint32(len(f.nodes)))
	fw.u32(uint32(f.base))
	fw.u32(uint32(f.total))
	fw.u32(uint32(len(f.out.edges)))
	fw.u32(uint32(len(f.in.edges)))

	fw.u32(uint32(len(rels.rels)))
	for _, rel := range rels.rels {
		fw.str(rel)
	}
	for i := range f.nodes {
		nd := &f.nodes[i]
		fw.u8(uint8(nd.Kind))
		fw.str(nd.Name)
		fw.str(nd.Domain)
	}
	// byName entries are sorted so identical nets serialize identically;
	// each entry's id order (insertion order) is preserved.
	names := make([]string, 0, len(f.byName))
	for name := range f.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	fw.u32(uint32(len(names)))
	for _, name := range names {
		fw.str(name)
		ids := f.byName[name]
		fw.u32(uint32(len(ids)))
		for _, id := range ids {
			fw.u32(uint32(id))
		}
	}
	for k := 0; k < int(numKinds); k++ {
		ids := f.byKind[k]
		fw.u32(uint32(len(ids)))
		for _, id := range ids {
			fw.u32(uint32(id))
		}
	}
	writeCSR(&fw, &f.out, rels)
	writeCSR(&fw, &f.in, rels)
	if fw.err != nil {
		return 0, fmt.Errorf("core: frozen save: %w", fw.err)
	}
	sum := crc.Sum32()
	tail := fzWriter{w: w}
	tail.u32(sum)
	if tail.err != nil {
		return 0, fmt.Errorf("core: frozen save: %w", tail.err)
	}
	return sum, nil
}

// LoadFrozen reads a snapshot written by (*FrozenNet).Save and returns a
// ready-to-serve FrozenNet. Every structural invariant is validated —
// offsets, kinds, node ids, rel indexes, the edge counter, the checksum —
// so corrupt or truncated input yields an error, never a panic later.
func LoadFrozen(r io.Reader) (*FrozenNet, error) {
	head := fzReader{r: r}
	var magic [4]byte
	head.read(magic[:])
	if head.err == nil && magic != frozenMagic {
		head.err = fmt.Errorf("bad magic %q", magic[:])
	}
	version := head.u16()
	if head.err == nil && version != frozenVersion {
		head.err = fmt.Errorf("unsupported snapshot version %d", version)
	}
	if head.err != nil {
		return nil, fmt.Errorf("core: load frozen: %w", head.err)
	}

	crc := crc32.NewIEEE()
	fr := fzReader{r: io.TeeReader(r, crc)}
	if nk := fr.u8(); fr.err == nil && nk != uint8(numKinds) {
		fr.err = fmt.Errorf("snapshot has %d node kinds, this build has %d", nk, numKinds)
	}
	if nek := fr.u8(); fr.err == nil && nek != uint8(numEdgeKinds) {
		fr.err = fmt.Errorf("snapshot has %d edge kinds, this build has %d", nek, numEdgeKinds)
	}
	nodeCount := fr.count("node")
	base := fr.count("base")
	totalNodes := fr.count("total node")
	outEdgeCount := fr.count("out edge")
	inEdgeCount := fr.count("in edge")
	if fr.err == nil && base+nodeCount > totalNodes {
		fr.err = fmt.Errorf("shard [%d,%d) exceeds declared total %d", base, base+nodeCount, totalNodes)
	}

	relCount := fr.count("rel")
	var rels []string
	if fr.err == nil {
		rels = make([]string, 0, prealloc(relCount))
		for i := 0; i < relCount && fr.err == nil; i++ {
			rels = append(rels, fr.str())
		}
	}

	f := &FrozenNet{base: NodeID(base), total: totalNodes}
	if fr.err == nil {
		f.nodes = make([]Node, 0, prealloc(nodeCount))
		for i := 0; i < nodeCount && fr.err == nil; i++ {
			kind := NodeKind(fr.u8())
			name := fr.str()
			domain := fr.str()
			if fr.err == nil && (kind < 0 || kind >= numKinds) {
				fr.err = fmt.Errorf("node %d: kind %d out of range", i, kind)
			}
			f.nodes = append(f.nodes, Node{ID: NodeID(base + i), Kind: kind, Name: name, Domain: domain})
		}
	}

	nameCount := fr.count("name index")
	if fr.err == nil {
		f.byName = make(map[string][]NodeID, nameCount)
		for i := 0; i < nameCount && fr.err == nil; i++ {
			name := fr.str()
			cnt := fr.count("name entry")
			if fr.err != nil {
				break
			}
			ids := make([]NodeID, 0, prealloc(cnt))
			for j := 0; j < cnt; j++ {
				id := fr.u32()
				if fr.err != nil {
					break
				}
				if int(id) < base || int(id) >= base+nodeCount {
					fr.err = fmt.Errorf("name %q: node id %d outside shard range", name, id)
					break
				}
				if f.nodes[int(id)-base].Name != name {
					fr.err = fmt.Errorf("name index %q points at node %d named %q", name, id, f.nodes[int(id)-base].Name)
					break
				}
				ids = append(ids, NodeID(id))
			}
			f.byName[name] = ids
		}
	}

	for k := 0; k < int(numKinds) && fr.err == nil; k++ {
		cnt := fr.count("kind index")
		if fr.err != nil {
			break
		}
		ids := make([]NodeID, 0, prealloc(cnt))
		for j := 0; j < cnt; j++ {
			id := fr.u32()
			if fr.err != nil {
				break
			}
			if int(id) < base || int(id) >= base+nodeCount {
				fr.err = fmt.Errorf("kind %d index: node id %d outside shard range", k, id)
				break
			}
			if f.nodes[int(id)-base].Kind != NodeKind(k) {
				fr.err = fmt.Errorf("kind %d index holds node %d of kind %d", k, id, f.nodes[int(id)-base].Kind)
				break
			}
			ids = append(ids, NodeID(id))
		}
		f.byKind[k] = ids
	}

	if fr.err == nil {
		f.out = readCSR(&fr, "out", nodeCount, outEdgeCount, totalNodes, rels)
	}
	if fr.err == nil {
		f.in = readCSR(&fr, "in", nodeCount, inEdgeCount, totalNodes, rels)
	}
	if fr.err == nil {
		// The logical edge counter is not trusted beyond the header/CSR
		// agreement already enforced by readCSR; the shard's logical count
		// is its out-half-edge count, so shard counts sum to the net's.
		f.edges = len(f.out.edges)
	}
	if fr.err != nil {
		return nil, fmt.Errorf("core: load frozen: %w", fr.err)
	}
	sum := crc.Sum32()
	tail := fzReader{r: r}
	if stored := tail.u32(); tail.err != nil {
		return nil, fmt.Errorf("core: load frozen: checksum: %w", tail.err)
	} else if stored != sum {
		return nil, fmt.Errorf("core: load frozen: checksum mismatch (stored %08x, computed %08x)", stored, sum)
	}
	f.checksum = sum
	nn := len(f.nodes)
	f.visit.New = func() any {
		return &visitState{gen: make([]uint32, nn)}
	}
	return f, nil
}
