package hypernym

import (
	"math"
	"math/rand"
	"testing"

	"alicoco/internal/emb"
	"alicoco/internal/mat"
	"alicoco/internal/world"
)

func TestMinePatternsSuchAs(t *testing.T) {
	corpus := [][]string{
		{"clothing", "such", "as", "dress", "and", "skirt"},
		{"the", "silk", "dress", "is", "a", "kind", "of", "dress"},
		{"nothing", "here"},
	}
	pairs := MinePatterns(corpus)
	want := map[[2]string]string{
		{"dress", "clothing"}:   "such_as",
		{"skirt", "clothing"}:   "such_as",
		{"silk dress", "dress"}: "kind_of",
	}
	if len(pairs) != len(want) {
		t.Fatalf("pairs: got %v", pairs)
	}
	for _, p := range pairs {
		if want[[2]string{p.Hypo, p.Hyper}] != p.Rule {
			t.Fatalf("unexpected pair %+v", p)
		}
	}
}

func TestMinePatternsDedup(t *testing.T) {
	corpus := [][]string{
		{"clothing", "such", "as", "dress", "and", "skirt"},
		{"clothing", "such", "as", "dress", "and", "skirt"},
	}
	if got := len(MinePatterns(corpus)); got != 2 {
		t.Fatalf("dedup failed: %d pairs", got)
	}
}

func TestHeadRule(t *testing.T) {
	pairs := HeadRule([]string{"dress", "silk dress", "evening silk dress", "unrelated"})
	found := map[[2]string]bool{}
	for _, p := range pairs {
		found[[2]string{p.Hypo, p.Hyper}] = true
	}
	if !found[[2]string{"silk dress", "dress"}] {
		t.Fatal("head rule missed silk dress -> dress")
	}
	if !found[[2]string{"evening silk dress", "dress"}] {
		t.Fatal("head rule missed evening silk dress -> dress")
	}
	if found[[2]string{"unrelated", "unrelated"}] {
		t.Fatal("self pair emitted")
	}
}

// fixture builds a world + embeddings + dataset once for the heavier tests.
type fixture struct {
	w *world.World
	d *Dataset
}

func buildFixture(t *testing.T) *fixture {
	t.Helper()
	w := world.New(world.TinyConfig())
	corpus := w.GenCorpus(300, 300, 300).All()
	cfg := emb.DefaultW2VConfig()
	cfg.Dim = 16
	cfg.Epochs = 2
	w2v := emb.TrainWord2Vec(corpus, cfg)
	embed := func(tokens []string) mat.Vec {
		vs := w2v.EmbedSeq(tokens)
		out := mat.NewVec(cfg.Dim)
		for _, v := range vs {
			out.Add(v)
		}
		if len(vs) > 0 {
			out.Scale(1 / float64(len(vs)))
		}
		return out
	}
	return &fixture{w: w, d: BuildDataset(w, embed, 5)}
}

func TestDatasetSplitsDisjoint(t *testing.T) {
	f := buildFixture(t)
	d := f.d
	if len(d.TrainPos) == 0 || len(d.ValPos) == 0 || len(d.TestPos) == 0 {
		t.Fatalf("splits empty: %d/%d/%d", len(d.TrainPos), len(d.ValPos), len(d.TestPos))
	}
	seen := map[int]string{}
	check := func(pos [][2]int, name string) {
		for _, p := range pos {
			if prev, ok := seen[p[0]]; ok && prev != name {
				t.Fatalf("hyponym %d appears in both %s and %s", p[0], prev, name)
			}
			seen[p[0]] = name
		}
	}
	check(d.TrainPos, "train")
	check(d.ValPos, "val")
	check(d.TestPos, "test")
}

func TestTrainSetNegativeRatio(t *testing.T) {
	f := buildFixture(t)
	set := f.d.TrainSet(f.d.TrainPos[:10], 5, 1)
	pos, neg := 0, 0
	for _, ex := range set {
		if ex.Label {
			pos++
		} else {
			neg++
			if f.d.isGold(ex.HypoID, ex.HyperID) {
				t.Fatal("negative example is actually gold")
			}
		}
	}
	if pos != 10 {
		t.Fatalf("positives: got %d", pos)
	}
	if neg < 40 { // collisions may drop a few
		t.Fatalf("negatives: got %d, want close to 50", neg)
	}
}

func TestHardNegativesAreNotGold(t *testing.T) {
	f := buildFixture(t)
	hard := f.d.HardNegatives(f.d.TrainPos, 2, 3)
	if len(hard) == 0 {
		t.Fatal("no hard negatives")
	}
	for _, ex := range hard {
		if ex.Label {
			t.Fatal("hard negative labeled positive")
		}
		if f.d.isGold(ex.HypoID, ex.HyperID) {
			t.Fatal("hard negative is gold")
		}
	}
}

func TestProjectionLearnsHypernymy(t *testing.T) {
	f := buildFixture(t)
	d := f.d
	train := d.TrainSet(d.TrainPos, 20, 7)
	model := NewProjection(16, 4, 9)
	model.Fit(train, 20, 0.01, 32, 13)
	ev := d.Evaluate(model, d.TestPos, 0, 1)
	if ev.MAP < 0.10 {
		t.Fatalf("trained MAP too low: %+v", ev)
	}
	// Untrained model should be much worse.
	fresh := NewProjection(16, 4, 77)
	ev0 := d.Evaluate(fresh, d.TestPos, 0, 1)
	if ev.MAP <= ev0.MAP {
		t.Fatalf("training did not help: %v vs %v", ev.MAP, ev0.MAP)
	}
}

func TestProjectionScoreInUnitInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewProjection(8, 3, 4)
	for i := 0; i < 50; i++ {
		a, b := mat.NewVec(8), mat.NewVec(8)
		for j := range a {
			a[j], b[j] = rng.NormFloat64(), rng.NormFloat64()
		}
		s := p.Score(a, b)
		if s < 0 || s > 1 {
			t.Fatalf("score out of range: %v", s)
		}
	}
}

func TestProjectionGradientsMatchFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := NewProjection(5, 2, 8)
	hypo, hyper := mat.NewVec(5), mat.NewVec(5)
	for i := range hypo {
		hypo[i], hyper[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	loss := p.TrainStep(hypo, hyper, 1)
	if loss <= 0 {
		t.Fatal("loss should be positive")
	}
	eps := 1e-6
	for _, prm := range p.Params() {
		for i := range prm.W.Data {
			orig := prm.W.Data[i]
			prm.W.Data[i] = orig + eps
			lp := nllOf(p, hypo, hyper, 1)
			prm.W.Data[i] = orig - eps
			lm := nllOf(p, hypo, hyper, 1)
			prm.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if diff := num - prm.G.Data[i]; diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("gradient mismatch %s[%d]: analytic %v numeric %v", prm.Name, i, prm.G.Data[i], num)
			}
		}
	}
}

func nllOf(p *Projection, hypo, hyper mat.Vec, label float64) float64 {
	y := p.Score(hypo, hyper)
	eps := 1e-12
	if label > 0.5 {
		return -math.Log(y + eps)
	}
	return -math.Log(1 - y + eps)
}

func TestActiveLearningStrategiesRun(t *testing.T) {
	f := buildFixture(t)
	d := f.d
	pool := append(d.TrainSet(d.TrainPos, 6, 21), d.HardNegatives(d.TrainPos, 2, 22)...)
	cfg := DefaultALConfig(16)
	cfg.K = 150
	cfg.MaxIters = 4
	cfg.Epochs = 3
	for _, strat := range []Strategy{Random, US, CS, UCS} {
		res := RunActiveLearning(d, pool, d.TestPos, cfg, strat)
		if len(res.History) == 0 {
			t.Fatalf("%s: no history", strat)
		}
		if res.LabeledUsed <= 0 || res.LabeledUsed > len(pool) {
			t.Fatalf("%s: bad labeled count %d", strat, res.LabeledUsed)
		}
		if res.Best.MAP <= 0 {
			t.Fatalf("%s: zero MAP", strat)
		}
		// Labeled counts must be monotone over rounds.
		for i := 1; i < len(res.History); i++ {
			if res.History[i].Labeled <= res.History[i-1].Labeled {
				t.Fatalf("%s: labeled counts not increasing: %+v", strat, res.History)
			}
		}
	}
}

func TestLabelsToReach(t *testing.T) {
	r := ALResult{History: []ALRound{{Labeled: 100, MAP: 0.2}, {Labeled: 200, MAP: 0.5}}}
	if r.LabelsToReach(0.4) != 200 {
		t.Fatal("LabelsToReach wrong")
	}
	if r.LabelsToReach(0.9) != -1 {
		t.Fatal("unreached target should be -1")
	}
}
