package hypernym

import (
	"math"
	"math/rand"

	"alicoco/internal/mat"
	"alicoco/internal/nn"
)

// Projection is the projection-learning model of Section 4.2.2: a K-slice
// bilinear tensor s_k = pᵀ T_k h over frozen concept embeddings, combined by
// a sigmoid output layer into the probability that h is a hypernym of p
// (Equations 1-2).
type Projection struct {
	Dim, K int
	T      []*nn.Param // K slices, each Dim×Dim
	W      *nn.Param   // 1×K output weights
	B      *nn.Param   // 1×1 bias
	params []*nn.Param
}

// NewProjection returns a model for embeddings of the given dimension with
// K tensor slices.
func NewProjection(dim, k int, seed int64) *Projection {
	rng := rand.New(rand.NewSource(seed))
	p := &Projection{Dim: dim, K: k}
	for i := 0; i < k; i++ {
		t := nn.NewParamXavier("proj.T", dim, dim, rng)
		p.T = append(p.T, t)
	}
	p.W = nn.NewParamXavier("proj.W", 1, k, rng)
	p.B = nn.NewParam("proj.b", 1, 1)
	p.params = append(append([]*nn.Param{}, p.T...), p.W, p.B)
	return p
}

// Params returns the trainable parameters.
func (p *Projection) Params() []*nn.Param { return p.params }

// Score returns the hypernymy probability for (hypo, hyper) embeddings.
func (p *Projection) Score(hypo, hyper mat.Vec) float64 {
	z := p.B.W.Data[0]
	for k := 0; k < p.K; k++ {
		s := hypo.Dot(p.T[k].W.MulVec(hyper))
		z += p.W.W.Data[k] * s
	}
	return mat.Sigmoid(z)
}

// TrainStep accumulates gradients for one example and returns its loss.
// label is 1 for a true hypernym pair, 0 otherwise.
func (p *Projection) TrainStep(hypo, hyper mat.Vec, label float64) float64 {
	s := make(mat.Vec, p.K)
	th := make([]mat.Vec, p.K) // T_k · hyper, reused in backward
	z := p.B.W.Data[0]
	for k := 0; k < p.K; k++ {
		th[k] = p.T[k].W.MulVec(hyper)
		s[k] = hypo.Dot(th[k])
		z += p.W.W.Data[k] * s[k]
	}
	y := mat.Sigmoid(z)
	dz := y - label
	for k := 0; k < p.K; k++ {
		p.W.G.Data[k] += dz * s[k]
		p.T[k].G.AddOuter(dz*p.W.W.Data[k], hypo, hyper)
	}
	p.B.G.Data[0] += dz
	eps := 1e-12
	if label > 0.5 {
		return -math.Log(y + eps)
	}
	return -math.Log(1 - y + eps)
}

// Example is one labeled (hyponym, hypernym) training pair in embedding
// space, with IDs kept for bookkeeping.
type Example struct {
	HypoID, HyperID int
	Hypo, Hyper     mat.Vec
	Label           bool
}

// Fit trains the model with Adam over the examples for the given epochs.
// Deterministic for a fixed seed.
func (p *Projection) Fit(examples []Example, epochs int, lr float64, batch int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	opt := nn.NewAdam(lr, 5)
	if batch <= 0 {
		batch = 32
	}
	var last float64
	for e := 0; e < epochs; e++ {
		perm := rng.Perm(len(examples))
		var total float64
		for i, pi := range perm {
			ex := examples[pi]
			lbl := 0.0
			if ex.Label {
				lbl = 1
			}
			total += p.TrainStep(ex.Hypo, ex.Hyper, lbl)
			if (i+1)%batch == 0 || i == len(perm)-1 {
				opt.Step(p.params)
			}
		}
		last = total / float64(max(1, len(examples)))
	}
	return last
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
