// Package hypernym implements hypernym discovery for organizing primitive
// concepts into the fine-grained taxonomy (Section 4.2): Hearst-style
// pattern mining, a projection-learning model (bilinear tensor scoring), and
// the UCS active-learning loop of Algorithm 1, evaluated with MAP/MRR/P@1 as
// in Table 3 and Figure 9.
package hypernym

import "strings"

// PatternPair is a (hyponym, hypernym) surface-form pair extracted by an
// unsupervised rule, with the rule that produced it.
type PatternPair struct {
	Hypo, Hyper string
	Rule        string // "such_as", "kind_of", "head"
}

// MinePatterns scans a corpus for Hearst patterns: "<Y> such as <X> and
// <X'>" and "the <X> is a kind of <Y>" (Section 4.2.1).
func MinePatterns(corpus [][]string) []PatternPair {
	var out []PatternPair
	seen := make(map[[2]string]bool)
	add := func(hypo, hyper, rule string) {
		hypo, hyper = strings.TrimSpace(hypo), strings.TrimSpace(hyper)
		if hypo == "" || hyper == "" || hypo == hyper {
			return
		}
		key := [2]string{hypo, hyper}
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, PatternPair{Hypo: hypo, Hyper: hyper, Rule: rule})
	}
	for _, sent := range corpus {
		joined := strings.Join(sent, " ")
		if i := strings.Index(joined, " such as "); i > 0 {
			hyper := joined[:i]
			rest := joined[i+len(" such as "):]
			for _, hypo := range strings.Split(rest, " and ") {
				add(hypo, hyper, "such_as")
			}
			continue
		}
		if i := strings.Index(joined, " is a kind of "); i > 0 {
			hypo := strings.TrimPrefix(joined[:i], "the ")
			hyper := joined[i+len(" is a kind of "):]
			add(hypo, hyper, "kind_of")
		}
	}
	return out
}

// HeadRule applies the compound-head grammar rule of Section 4.2.1 (the
// English analogue of “XX裤 must be a 裤”): a multi-token concept whose last
// token is itself a known concept has that token as hypernym.
func HeadRule(concepts []string) []PatternPair {
	known := make(map[string]bool, len(concepts))
	for _, c := range concepts {
		known[c] = true
	}
	var out []PatternPair
	for _, c := range concepts {
		toks := strings.Fields(c)
		if len(toks) < 2 {
			continue
		}
		head := toks[len(toks)-1]
		if known[head] && head != c {
			out = append(out, PatternPair{Hypo: c, Hyper: head, Rule: "head"})
		}
	}
	return out
}
