package hypernym

import (
	"math"
	"math/rand"
	"sort"
)

// Strategy is an active-learning sampling strategy (Section 4.2.3 / 7.3).
type Strategy string

// The four strategies of Table 3.
const (
	Random Strategy = "Random" // label the whole pool in random order
	US     Strategy = "US"     // uncertainty sampling
	CS     Strategy = "CS"     // high-confidence sampling
	UCS    Strategy = "UCS"    // uncertainty + high-confidence (Algorithm 1)
)

// ALConfig controls the active-learning loop.
type ALConfig struct {
	K        int     // samples labeled per iteration
	Alpha    float64 // UCS mix: alpha*K uncertain + (1-alpha)*K confident
	MaxIters int
	Patience int // stop when MAP hasn't improved for this many iterations
	Epochs   int // training epochs per iteration
	LR       float64
	TensorK  int // projection tensor slices
	EmbDim   int
	Seed     int64
	MaxCands int // candidate cap during evaluation
}

// DefaultALConfig returns laptop-scale settings.
func DefaultALConfig(embDim int) ALConfig {
	return ALConfig{
		K: 250, Alpha: 0.7, MaxIters: 10, Patience: 2,
		Epochs: 4, LR: 0.01, TensorK: 4, EmbDim: embDim, Seed: 11, MaxCands: 0,
	}
}

// ALRound records one iteration of the loop.
type ALRound struct {
	Labeled int
	MAP     float64
}

// ALResult is one strategy's outcome for Table 3.
type ALResult struct {
	Strategy    Strategy
	LabeledUsed int // labels consumed at the best-MAP iteration
	Best        EvalResult
	History     []ALRound
}

// RunActiveLearning executes Algorithm 1 over a pool of unlabeled examples
// whose true labels act as the oracle annotator H. The model is retrained
// from scratch each iteration (train_test in the paper).
func RunActiveLearning(d *Dataset, pool []Example, testPos [][2]int, cfg ALConfig, strat Strategy) ALResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	remaining := append([]Example(nil), pool...)
	rng.Shuffle(len(remaining), func(i, j int) { remaining[i], remaining[j] = remaining[j], remaining[i] })

	res := ALResult{Strategy: strat}
	var labeled []Example
	bestMAP := math.Inf(-1)
	noImprove := 0

	takeFront := func(k int) {
		if k > len(remaining) {
			k = len(remaining)
		}
		labeled = append(labeled, remaining[:k]...)
		remaining = remaining[k:]
	}

	// Initial random batch (Algorithm 1, lines 3-7).
	takeFront(cfg.K)

	for iter := 0; iter < cfg.MaxIters; iter++ {
		model := NewProjection(cfg.EmbDim, cfg.TensorK, cfg.Seed+100)
		model.Fit(labeled, cfg.Epochs, cfg.LR, 32, cfg.Seed+int64(iter))
		ev := d.Evaluate(model, testPos, cfg.MaxCands, cfg.Seed)
		res.History = append(res.History, ALRound{Labeled: len(labeled), MAP: ev.MAP})
		if ev.MAP > bestMAP {
			bestMAP = ev.MAP
			res.Best = ev
			res.LabeledUsed = len(labeled)
			noImprove = 0
		} else {
			noImprove++
		}
		if noImprove >= cfg.Patience || len(remaining) == 0 {
			break
		}

		// Select the next batch (Algorithm 1, lines 9-10).
		switch strat {
		case Random:
			takeFront(cfg.K)
		default:
			scores := make([]float64, len(remaining))
			for i, ex := range remaining {
				scores[i] = model.Score(ex.Hypo, ex.Hyper)
			}
			idx := make([]int, len(remaining))
			for i := range idx {
				idx[i] = i
			}
			var pick []int
			switch strat {
			case US:
				sort.SliceStable(idx, func(a, b int) bool {
					return certainty(scores[idx[a]]) < certainty(scores[idx[b]])
				})
				pick = idx[:min(cfg.K, len(idx))]
			case CS:
				sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
				pick = idx[:min(cfg.K, len(idx))]
			case UCS:
				nUnc := int(cfg.Alpha * float64(cfg.K))
				byUnc := append([]int(nil), idx...)
				sort.SliceStable(byUnc, func(a, b int) bool {
					return certainty(scores[byUnc[a]]) < certainty(scores[byUnc[b]])
				})
				chosen := make(map[int]bool)
				for _, i := range byUnc[:min(nUnc, len(byUnc))] {
					chosen[i] = true
					pick = append(pick, i)
				}
				byConf := append([]int(nil), idx...)
				sort.SliceStable(byConf, func(a, b int) bool { return scores[byConf[a]] > scores[byConf[b]] })
				for _, i := range byConf {
					if len(pick) >= min(cfg.K, len(idx)) {
						break
					}
					if !chosen[i] {
						chosen[i] = true
						pick = append(pick, i)
					}
				}
				sort.Ints(pick)
			}
			takeIndices(&labeled, &remaining, pick)
		}
	}
	return res
}

// certainty is the paper's p_i = |S_i - 0.5| / 0.5 (line 9 of Algorithm 1):
// low means uncertain.
func certainty(score float64) float64 { return math.Abs(score-0.5) / 0.5 }

// takeIndices moves the picked indices from remaining into labeled.
func takeIndices(labeled, remaining *[]Example, pick []int) {
	picked := make(map[int]bool, len(pick))
	for _, i := range pick {
		picked[i] = true
	}
	var keep []Example
	for i, ex := range *remaining {
		if picked[i] {
			*labeled = append(*labeled, ex)
		} else {
			keep = append(keep, ex)
		}
	}
	*remaining = keep
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// LabelsToReach returns the number of labels the strategy needed to first
// reach the target MAP, or -1 if it never did — the "Labeled Size" column of
// Table 3.
func (r ALResult) LabelsToReach(target float64) int {
	for _, round := range r.History {
		if round.MAP >= target {
			return round.Labeled
		}
	}
	return -1
}
