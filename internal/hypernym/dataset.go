package hypernym

import (
	"math/rand"
	"sort"

	"alicoco/internal/mat"
	"alicoco/internal/metrics"
	"alicoco/internal/world"
)

// Dataset is the hypernym-discovery benchmark of Section 7.3: Category
// primitives with ground-truth hypernyms, split into train/val/test (7:2:1),
// plus the embedding function used by the projection model.
type Dataset struct {
	World    *world.World
	Embed    func(tokens []string) mat.Vec
	Concepts []int // candidate pool: all Category primitive IDs

	Gold map[int]map[int]bool // hypo -> hypernym set (transitive truth)

	TrainPos [][2]int
	ValPos   [][2]int
	TestPos  [][2]int
}

// BuildDataset splits the world's planted hypernym pairs 7:2:1 by hyponym so
// no concept leaks across splits.
func BuildDataset(w *world.World, embed func([]string) mat.Vec, seed int64) *Dataset {
	d := &Dataset{World: w, Embed: embed, Gold: make(map[int]map[int]bool)}
	d.Concepts = append([]int(nil), w.ByDomain[world.Category]...)
	for _, pair := range w.HypernymPairs {
		if d.Gold[pair[0]] == nil {
			d.Gold[pair[0]] = make(map[int]bool)
		}
		d.Gold[pair[0]][pair[1]] = true
	}
	hypos := make([]int, 0, len(d.Gold))
	for h := range d.Gold {
		hypos = append(hypos, h)
	}
	sort.Ints(hypos)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(hypos), func(i, j int) { hypos[i], hypos[j] = hypos[j], hypos[i] })
	nTrain := len(hypos) * 7 / 10
	nVal := len(hypos) * 2 / 10
	assign := func(hs []int) [][2]int {
		var out [][2]int
		for _, h := range hs {
			for hyper := range d.Gold[h] {
				out = append(out, [2]int{h, hyper})
			}
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i][0] != out[j][0] {
				return out[i][0] < out[j][0]
			}
			return out[i][1] < out[j][1]
		})
		return out
	}
	d.TrainPos = assign(hypos[:nTrain])
	d.ValPos = assign(hypos[nTrain : nTrain+nVal])
	d.TestPos = assign(hypos[nTrain+nVal:])
	return d
}

// EmbedConcept embeds a primitive by ID.
func (d *Dataset) EmbedConcept(id int) mat.Vec {
	return d.Embed(d.World.Prim(id).Tokens)
}

// example materializes a labeled pair.
func (d *Dataset) example(hypo, hyper int, label bool) Example {
	return Example{
		HypoID: hypo, HyperID: hyper,
		Hypo: d.EmbedConcept(hypo), Hyper: d.EmbedConcept(hyper),
		Label: label,
	}
}

// isGold reports ground-truth hypernymy.
func (d *Dataset) isGold(hypo, hyper int) bool { return d.Gold[hypo][hyper] }

// TrainSet builds training examples with negRatio random negatives per
// positive, the Figure 9 (left) knob: negatives replace the hypernym with a
// random Category concept (Section 7.3).
func (d *Dataset) TrainSet(pos [][2]int, negRatio int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	var out []Example
	for _, p := range pos {
		out = append(out, d.example(p[0], p[1], true))
		for k := 0; k < negRatio; k++ {
			hyper := d.Concepts[rng.Intn(len(d.Concepts))]
			if hyper == p[0] || d.isGold(p[0], hyper) {
				continue
			}
			out = append(out, d.example(p[0], hyper, false))
		}
	}
	return out
}

// HardNegatives builds the difficult negatives that motivate UCS
// (Section 4.2.3): co-hyponym pairs (siblings under the same hypernym) and
// reversed pairs, both of which embed similarly to true pairs.
func (d *Dataset) HardNegatives(pos [][2]int, perPos int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	// Index: hypernym -> hyponyms (within this split).
	children := make(map[int][]int)
	for _, p := range pos {
		children[p[1]] = append(children[p[1]], p[0])
	}
	var out []Example
	for _, p := range pos {
		added := 0
		sibs := children[p[1]]
		if len(sibs) > 1 {
			for tries := 0; tries < 8 && added < perPos; tries++ {
				s := sibs[rng.Intn(len(sibs))]
				if s == p[0] || d.isGold(p[0], s) {
					continue
				}
				out = append(out, d.example(p[0], s, false))
				added++
			}
		}
		if added < perPos && !d.isGold(p[1], p[0]) {
			out = append(out, d.example(p[1], p[0], false)) // reversed
		}
	}
	return out
}

// EvalResult bundles the ranking metrics of Table 3.
type EvalResult struct {
	MAP, MRR, P1 float64
}

// Evaluate ranks every candidate hypernym for each test hyponym and computes
// MAP, MRR and P@1 against the gold sets — the whole-vocabulary search of
// Section 7.3. maxCandidates caps the pool per query (0 = all).
func (d *Dataset) Evaluate(p *Projection, pos [][2]int, maxCandidates int, seed int64) EvalResult {
	rng := rand.New(rand.NewSource(seed))
	hypos := make([]int, 0)
	seen := make(map[int]bool)
	for _, pr := range pos {
		if !seen[pr[0]] {
			seen[pr[0]] = true
			hypos = append(hypos, pr[0])
		}
	}
	var rankings []metrics.Ranking
	for _, hypo := range hypos {
		hv := d.EmbedConcept(hypo)
		cands := d.Concepts
		if maxCandidates > 0 && len(cands) > maxCandidates {
			// Sampled pool always containing the gold hypernyms.
			pool := make([]int, 0, maxCandidates)
			for hyper := range d.Gold[hypo] {
				pool = append(pool, hyper)
			}
			sort.Ints(pool)
			for len(pool) < maxCandidates {
				c := d.Concepts[rng.Intn(len(d.Concepts))]
				if c != hypo && !d.isGold(hypo, c) {
					pool = append(pool, c)
				}
			}
			cands = pool
		}
		scores := make([]float64, 0, len(cands))
		labels := make([]bool, 0, len(cands))
		for _, c := range cands {
			if c == hypo {
				continue
			}
			scores = append(scores, p.Score(hv, d.EmbedConcept(c)))
			labels = append(labels, d.isGold(hypo, c))
		}
		rankings = append(rankings, metrics.RankScores(scores, labels))
	}
	return EvalResult{
		MAP: metrics.MAP(rankings),
		MRR: metrics.MRR(rankings),
		P1:  metrics.MeanPrecisionAt(rankings, 1),
	}
}
