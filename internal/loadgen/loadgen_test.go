package loadgen

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"alicoco"
	"alicoco/internal/resilience"
)

func testCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := alicoco.Build(alicoco.Small())
	if err != nil {
		t.Fatal(err)
	}
	cp, err := CorpusFrom(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestMixDeterministicAndDistinct(t *testing.T) {
	cp := testCorpus(t)
	for _, name := range MixNames {
		a, err := NewMix(name, cp, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := NewMix(name, cp, 42)
		recs := 0
		for i := 0; i < 500; i++ {
			oa, ob := a.Next(), b.Next()
			if oa.Recommend != ob.Recommend || oa.Query != ob.Query || len(oa.Session) != len(ob.Session) {
				t.Fatalf("mix %s not deterministic at op %d", name, i)
			}
			if oa.Recommend {
				recs++
				if len(oa.Session) == 0 {
					t.Fatalf("mix %s produced empty session", name)
				}
			} else if oa.Query == "" {
				t.Fatalf("mix %s produced empty query", name)
			}
		}
		if recs == 0 || recs == 500 {
			t.Fatalf("mix %s recommend count %d — want a blend", name, recs)
		}
	}
	if _, err := NewMix("nope", cp, 1); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestAdversarialMixBustsCaches(t *testing.T) {
	cp := testCorpus(t)
	m, err := NewMix("adversarial", cp, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i := 0; i < 2000; i++ {
		op := m.Next()
		if !op.Recommend {
			seen[op.Query]++
		}
	}
	unique := 0
	for q, n := range seen {
		if n == 1 && strings.Contains(q, "zzq") {
			unique++
		}
	}
	if unique < 400 {
		t.Fatalf("adversarial mix produced only %d unique miss queries out of %d distinct", unique, len(seen))
	}
}

func TestSLOChecks(t *testing.T) {
	slo := SLO{Deadline: 50 * time.Millisecond}
	good := &Result{Name: "good"}
	good.Counts.Sent, good.Counts.OK = 100, 90
	good.Counts.Shed = 10
	good.Goodput = 90
	if v := slo.Check(good); len(v) != 0 {
		t.Fatalf("clean result flagged: %v", v)
	}

	bad := &Result{Name: "bad"}
	bad.Counts.Sent = 100
	bad.Counts.OK = 50
	bad.Counts.ServerErr = 3
	bad.Counts.Hang = 1
	bad.Counts.LateOK = 40
	v := slo.Check(bad)
	if len(v) != 3 {
		t.Fatalf("want 3 violations (5xx, hang, late), got %d: %v", len(v), v)
	}

	base := &Result{Name: "base", Goodput: 100}
	collapsed := &Result{Name: "chaos", Goodput: 10}
	if v := slo.CheckGoodput(base, collapsed); len(v) != 1 {
		t.Fatalf("collapsed goodput not flagged: %v", v)
	}
	held := &Result{Name: "chaos", Goodput: 60}
	if v := slo.CheckGoodput(base, held); len(v) != 0 {
		t.Fatalf("held goodput flagged: %v", v)
	}
}

// TestDriverOpenLoopAgainstStub runs the real driver against a stub server
// that sheds every third request, and checks classification, goodput
// accounting, and that arrivals kept pace (open loop).
func TestDriverOpenLoopAgainstStub(t *testing.T) {
	var n atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%3 == 0 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"items":[]}`))
	}))
	defer srv.Close()

	cp := testCorpus(t)
	mix, err := NewMix("uniform", cp, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{
		BaseURL:  srv.URL,
		Mix:      mix,
		Rate:     400,
		Duration: 500 * time.Millisecond,
		Deadline: 100 * time.Millisecond,
		Retry:    true,
		Budget:   resilience.NewRetryBudget(0, 0),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counts
	if c.Sent < 150 {
		t.Fatalf("open loop sent only %d arrivals at 400/s for 500ms", c.Sent)
	}
	if c.OK == 0 || c.Shed == 0 {
		t.Fatalf("want both OKs and sheds, got %+v", c)
	}
	if c.ServerErr != 0 || c.Hang != 0 {
		t.Fatalf("stub produced errors/hangs: %+v", c)
	}
	if c.Retries == 0 && c.RetryDrops == 0 {
		t.Fatal("retry path never exercised despite sheds")
	}
	if res.Goodput <= 0 {
		t.Fatal("goodput not computed")
	}
	if res.Lat.Count() == 0 || res.ShedLat.Count() == 0 {
		t.Fatal("latency histograms empty")
	}
	if v := (SLO{Deadline: 100 * time.Millisecond}).Check(res); len(v) != 0 {
		t.Fatalf("stub run violated SLOs: %v", v)
	}
}

// TestDriverCountsHangs points the driver at a server that never answers
// and confirms the hang detector fires rather than blocking forever.
func TestDriverCountsHangs(t *testing.T) {
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer func() { close(stall); srv.Close() }()

	cp := testCorpus(t)
	mix, _ := NewMix("uniform", cp, 2)
	res, err := Run(Options{
		BaseURL:  srv.URL,
		Mix:      mix,
		Rate:     50,
		Duration: 200 * time.Millisecond,
		Deadline: 100 * time.Millisecond, // hang cap = 1.2s
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Hang == 0 {
		t.Fatalf("stalled server produced no hangs: %+v", res.Counts)
	}
	if res.Counts.OK != 0 {
		t.Fatalf("stalled server produced OKs: %+v", res.Counts)
	}
}

func TestPhaseSeedDistinct(t *testing.T) {
	a, b := PhaseSeed(1, 0), PhaseSeed(1, 1)
	if a == b {
		t.Fatal("phase seeds collide")
	}
	if a != PhaseSeed(1, 0) {
		t.Fatal("phase seed not deterministic")
	}
}
