package loadgen

import (
	"encoding/json"
	"os"
	"time"
)

// PhaseReport is one phase's Result flattened to stable JSON for
// BENCH_serve.json — durations in milliseconds, rates in req/s.
type PhaseReport struct {
	Name       string  `json:"name"`
	Mix        string  `json:"mix"`
	Chaos      bool    `json:"chaos"`
	RateRPS    float64 `json:"offered_rps"`
	DurationS  float64 `json:"duration_s"`
	GoodputRPS float64 `json:"goodput_rps"`

	Counts Counts `json:"counts"`

	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`

	ShedP99MS float64 `json:"shed_p99_ms"` // how fast 429s come back

	// Server is the server-side view of the same phase, reconstructed
	// from /metrics scrapes taken around it (nil when the run had no
	// scrape access, e.g. load against a remote server without -metrics).
	Server *ServerObs `json:"server_obs,omitempty"`

	// Notes carries run-specific annotations (e.g. chaos injection stats).
	Notes map[string]any `json:"notes,omitempty"`
}

// NewPhaseReport flattens a Result at the rate it was offered.
func NewPhaseReport(r *Result, rate float64, chaos bool) PhaseReport {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	return PhaseReport{
		Name:       r.Name,
		Mix:        r.Name,
		Chaos:      chaos,
		RateRPS:    rate,
		DurationS:  r.WallClock.Seconds(),
		GoodputRPS: r.Goodput,
		Counts:     r.Counts,
		P50MS:      ms(r.Lat.Quantile(0.50)),
		P99MS:      ms(r.Lat.Quantile(0.99)),
		P999MS:     ms(r.Lat.Quantile(0.999)),
		MaxMS:      ms(r.Lat.Max()),
		MeanMS:     ms(r.Lat.Mean()),
		ShedP99MS:  ms(r.ShedLat.Quantile(0.99)),
	}
}

// Report is the whole BENCH_serve.json document.
type Report struct {
	Tool       string        `json:"tool"` // "cocoload"
	Scale      string        `json:"scale"`
	Shards     int           `json:"shards"`
	DeadlineMS float64       `json:"deadline_ms"`
	GoVersion  string        `json:"go_version,omitempty"`
	Phases     []PhaseReport `json:"phases"`
	// Violations holds failed SLO assertions; empty means the run passed.
	Violations []string `json:"slo_violations"`
}

// Write renders the report as indented JSON at path (atomically enough for
// a benchmark artifact: write then rename is overkill here).
func (r *Report) Write(path string) error {
	if r.Violations == nil {
		r.Violations = []string{}
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}
