package loadgen

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a lock-free latency histogram with geometric buckets: 8 linear
// sub-buckets per power-of-two octave of microseconds (HdrHistogram's
// layout, cut down), giving <= 12.5% relative quantile error from 1µs to
// hours in a fixed 512-slot array of atomics. Record is two atomic adds —
// safe for every worker goroutine of an open-loop driver to hammer
// concurrently with zero allocation and no coordination.
type Hist struct {
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
	sumUS  atomic.Uint64
	maxUS  atomic.Uint64
}

const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	histBuckets = 512
)

// histIndex maps a microsecond value to its bucket: values below histSub
// map linearly (exact), larger values keep histSubBits of mantissa.
func histIndex(us uint64) int {
	if us < histSub {
		return int(us)
	}
	exp := bits.Len64(us) - 1 - histSubBits
	idx := (exp+1)*histSub + int(us>>uint(exp)) - histSub
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// histUpper is the inclusive upper bound of a bucket in microseconds —
// quantiles report it, so they err conservative (never under-report a
// tail).
func histUpper(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	exp := idx/histSub - 1
	if exp >= 60 {
		return ^uint64(0) // (off+1)<<exp would overflow; ~36,000 years in µs
	}
	off := idx%histSub + histSub
	return (uint64(off+1) << uint(exp)) - 1
}

// Record adds one latency observation.
func (h *Hist) Record(d time.Duration) {
	us := uint64(d.Microseconds())
	h.counts[histIndex(us)].Add(1)
	h.total.Add(1)
	h.sumUS.Add(us)
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.total.Load() }

// Quantile returns the value at quantile q in [0,1] (conservative: the
// upper bound of the bucket the rank lands in), or 0 with no data. The
// walk reads each bucket once; concurrent Records may or may not be seen,
// which is fine for progress reporting and end-of-run summaries alike.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > rank {
			us := histUpper(i)
			if m := h.maxUS.Load(); us > m {
				us = m // never report past the observed max
			}
			return time.Duration(us) * time.Microsecond
		}
	}
	return time.Duration(h.maxUS.Load()) * time.Microsecond
}

// Max returns the largest recorded observation.
func (h *Hist) Max() time.Duration {
	return time.Duration(h.maxUS.Load()) * time.Microsecond
}

// Mean returns the arithmetic mean of recorded observations.
func (h *Hist) Mean() time.Duration {
	t := h.total.Load()
	if t == 0 {
		return 0
	}
	return time.Duration(h.sumUS.Load()/t) * time.Microsecond
}
