package loadgen

import "alicoco/internal/obs"

// Hist is the shared lock-free latency histogram, promoted to
// internal/obs so the serving tier's /metrics endpoint and this load
// driver measure with identical buckets — that is what lets cocoload
// cross-check the server-observed histogram against its own exactly.
type Hist = obs.Hist
