package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"alicoco/internal/resilience"
)

// Options configures one open-loop run (a "phase").
type Options struct {
	// BaseURL is the server under load, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the requests; its Timeout is overridden to the hang
	// cap. nil means a fresh client with a large connection pool.
	Client *http.Client

	Mix      *Mix
	Rate     float64       // arrivals per second (open loop)
	Duration time.Duration // how long to generate arrivals

	// Deadline is the server's per-request deadline: 2xx slower than it
	// count as late (admitted work that missed its SLO), and the hang cap
	// is derived from it (2x + 1s) — a response slower than the cap means
	// the server hung instead of shedding or canceling.
	Deadline time.Duration
	// BatchDeadline classifies batch POSTs instead of Deadline when set
	// (batches legitimately run longer); it also raises the hang cap.
	BatchDeadline time.Duration

	// BatchFraction of search ops are sent as size-BatchSize POST batches.
	BatchFraction float64
	BatchSize     int

	// MaxInFlight caps client-side concurrency; arrivals past the cap are
	// dropped and counted (the open loop never slows down, it sheds
	// client-side). Default 256.
	MaxInFlight int

	// Retry enables one budgeted retry of shed (429) requests after a
	// short jittered delay; Budget throttles it so a shed storm cannot
	// amplify offered load (nil Budget = unlimited retries; pass one).
	Retry  bool
	Budget *resilience.RetryBudget

	Seed int64
}

// Counts classifies every arrival's outcome. Sent >= the sum of response
// classes while requests are in flight; after Run returns they balance.
type Counts struct {
	Sent       uint64 `json:"sent"`
	OK         uint64 `json:"ok"`              // 2xx within Deadline+grace
	LateOK     uint64 `json:"late_ok"`         // 2xx but slower than Deadline+grace
	Shed       uint64 `json:"shed"`            // 429
	NotFound   uint64 `json:"not_found"`       // 404 (adversarial recommends)
	Rejected   uint64 `json:"rejected"`        // other 4xx
	ServerErr  uint64 `json:"server_err"`      // 5xx — SLO violation
	Hang       uint64 `json:"hang"`            // no response within the hang cap — SLO violation
	NetErr     uint64 `json:"net_err"`         // transport failure below the hang cap
	ClientDrop uint64 `json:"client_drop"`     // arrival dropped at MaxInFlight
	Retries    uint64 `json:"retries"`         // budgeted retries issued
	RetryDrops uint64 `json:"retry_drops"`     // retries suppressed by the budget
	RetryAfter uint64 `json:"retry_after_sum"` // sum of Retry-After secs seen (jitter visibility)
}

// Result is one phase's measurements.
type Result struct {
	Name      string
	Counts    Counts
	Lat       Hist // client-measured latency of 2xx responses
	ShedLat   Hist // latency of 429s (how fast the gate refuses)
	WallClock time.Duration
	// Goodput is in-deadline successes per second of wall clock — the
	// number overload must not collapse.
	Goodput float64
}

// deadlineGrace absorbs client-side measurement overhead (loopback RTT,
// scheduler jitter, response decode) when classifying a 2xx as in-deadline.
const deadlineGrace = 150 * time.Millisecond

// HangCap returns the client timeout for a server deadline: responses
// slower than this are hangs, not latency.
func HangCap(deadline time.Duration) time.Duration {
	if deadline <= 0 {
		return 30 * time.Second
	}
	return 2*deadline + time.Second
}

// Run drives one open-loop phase and blocks until every in-flight request
// resolves.
func Run(opts Options) (*Result, error) {
	if opts.Mix == nil {
		return nil, fmt.Errorf("loadgen: Options.Mix is required")
	}
	if opts.Rate <= 0 || opts.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Rate and Duration must be positive")
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 256
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 8
	}
	client := opts.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = opts.MaxInFlight * 2
		tr.MaxIdleConnsPerHost = opts.MaxInFlight * 2
		client = &http.Client{Transport: tr}
	}
	capBase := opts.Deadline
	if opts.BatchDeadline > capBase {
		capBase = opts.BatchDeadline
	}
	client.Timeout = HangCap(capBase)

	d := &driver{opts: opts, client: client, res: &Result{Name: opts.Mix.Name}}
	d.rng.Store(uint64(opts.Seed)*2 + 1)

	sem := make(chan struct{}, opts.MaxInFlight)
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / opts.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	start := time.Now()
	end := start.Add(opts.Duration)

	// The generator: arrivals on the clock's schedule regardless of how
	// the server is doing. time.Sleep-based pacing accumulates error, so
	// the next arrival time is computed from the start (no drift).
	next := start
	for {
		now := time.Now()
		if now.After(end) {
			break
		}
		if now.Before(next) {
			time.Sleep(next.Sub(now))
		}
		next = next.Add(interval)
		op := opts.Mix.Next()
		atomic.AddUint64(&d.res.Counts.Sent, 1)
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() { <-sem; wg.Done() }()
				d.do(op)
			}()
		default:
			atomic.AddUint64(&d.res.Counts.ClientDrop, 1)
		}
	}
	wg.Wait()
	d.res.WallClock = time.Since(start)
	d.res.Goodput = float64(atomic.LoadUint64(&d.res.Counts.OK)) / d.res.WallClock.Seconds()
	return d.res, nil
}

type driver struct {
	opts   Options
	client *http.Client
	res    *Result
	rng    atomic.Uint64 // xorshift for retry jitter (shared by workers)
}

func (d *driver) rand() uint64 {
	for {
		old := d.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if d.rng.CompareAndSwap(old, x) {
			return x
		}
	}
}

// do issues one op (plus at most one budgeted retry of a shed).
func (d *driver) do(op Op) {
	d.opts.Budget.Attempt()
	for attempt := 0; ; attempt++ {
		status, retryAfter := d.send(op)
		if status != http.StatusTooManyRequests || !d.opts.Retry || attempt >= 1 {
			return
		}
		// The server shed us. Retrying is exactly how well-meaning clients
		// amplify overload — the budget is the brake: no tokens, no retry.
		if !d.opts.Budget.Spend() {
			atomic.AddUint64(&d.res.Counts.RetryDrops, 1)
			return
		}
		atomic.AddUint64(&d.res.Counts.Retries, 1)
		atomic.AddUint64(&d.res.Counts.RetryAfter, uint64(retryAfter))
		// Honor the hint's spirit at test timescale: a capped jittered
		// fraction of it, so phases lasting seconds still observe retries.
		wait := time.Duration(retryAfter) * time.Second / 10
		if wait > 300*time.Millisecond {
			wait = 300 * time.Millisecond
		}
		wait += time.Duration(d.rand() % uint64(50*time.Millisecond))
		time.Sleep(wait)
	}
}

// send issues the HTTP request for op and classifies the outcome; it
// returns the status (0 on transport error) and the parsed Retry-After.
func (d *driver) send(op Op) (status, retryAfter int) {
	var (
		resp  *http.Response
		err   error
		batch bool
	)
	start := time.Now()
	if op.Recommend {
		resp, err = d.client.Get(d.opts.BaseURL + "/recommend?items=" + joinInts(op.Session) + "&k=10")
	} else if d.opts.BatchFraction > 0 && float64(d.rand()%1000)/1000 < d.opts.BatchFraction {
		batch = true
		body := batchBody(op.Query, d.opts.BatchSize)
		resp, err = d.client.Post(d.opts.BaseURL+"/search/batch", "application/json", bytes.NewReader(body))
	} else {
		resp, err = d.client.Get(d.opts.BaseURL + "/search?q=" + url.QueryEscape(op.Query))
	}
	elapsed := time.Since(start)
	deadline := d.opts.Deadline
	if batch && d.opts.BatchDeadline > 0 {
		deadline = d.opts.BatchDeadline
	}
	c := &d.res.Counts
	if err != nil {
		// No response: a timeout at the hang cap means the server sat on
		// an admitted request instead of answering or shedding — the one
		// failure mode the SLO bans outright.
		if elapsed >= d.client.Timeout-50*time.Millisecond {
			atomic.AddUint64(&c.Hang, 1)
		} else {
			atomic.AddUint64(&c.NetErr, 1)
		}
		return 0, 0
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		d.res.Lat.Record(elapsed)
		if deadline > 0 && elapsed > deadline+deadlineGrace {
			atomic.AddUint64(&c.LateOK, 1)
		} else {
			atomic.AddUint64(&c.OK, 1)
		}
	case resp.StatusCode == http.StatusTooManyRequests:
		d.res.ShedLat.Record(elapsed)
		atomic.AddUint64(&c.Shed, 1)
		retryAfter, _ = strconv.Atoi(resp.Header.Get("Retry-After"))
	case resp.StatusCode == http.StatusNotFound:
		atomic.AddUint64(&c.NotFound, 1)
	case resp.StatusCode >= 500:
		atomic.AddUint64(&c.ServerErr, 1)
	default:
		atomic.AddUint64(&c.Rejected, 1)
	}
	return resp.StatusCode, retryAfter
}

// joinInts renders a comma-separated ID list for /recommend?items=.
func joinInts(ids []int) string {
	var b []byte
	for i, id := range ids {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(id), 10)
	}
	return string(b)
}

// batchBody builds a /search/batch body repeating variations of the query.
func batchBody(query string, n int) []byte {
	var b bytes.Buffer
	b.WriteString(`{"queries":[`)
	// Queries come from concept names (plain ASCII words), so
	// strconv.Quote's escaping rules match JSON's for everything the
	// corpus can produce.
	enc := strconv.Quote(query)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(enc)
	}
	b.WriteString(`],"max_items":12}`)
	return b.Bytes()
}

// Zipf and uniform corpora share a seeded source; expose a tiny helper so
// cocoload can derive distinct per-phase seeds deterministically.
func PhaseSeed(base int64, phase int) int64 {
	r := rand.New(rand.NewSource(base))
	var s int64
	for i := 0; i <= phase; i++ {
		s = r.Int63()
	}
	return s | 1
}
