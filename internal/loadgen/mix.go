// Package loadgen is the open-loop replay load generator behind
// cmd/cocoload: request mixes derived from the world model's click-log
// distributions (uniform, zipf-skewed, adversarial cache-miss), a
// lock-free latency histogram, an open-loop driver with a client retry
// budget, and the SLO checks the chaos suite asserts. Open-loop means
// arrivals are scheduled by the clock, not by responses — a slow server
// faces the same offered load as a fast one, so the measured tail includes
// the queueing a closed-loop (wait-for-response) driver would hide
// (coordinated omission).
package loadgen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"alicoco"
)

// Corpus is the replayable material extracted from a built net: real
// concept surfaces for search queries and world-model click sessions for
// recommendations.
type Corpus struct {
	Queries  []string // e-commerce concept names, insertion order
	Sessions [][]int  // viewed-item ID sessions from world.ClickLog
}

// CorpusFrom samples a corpus from a built facade. Snapshot-loaded nets
// have no world model (SampleSessions returns nil); the corpus then
// synthesizes sessions from item IDs so recommend traffic still flows.
func CorpusFrom(c *alicoco.CoCo, sessions int) (*Corpus, error) {
	cp := &Corpus{}
	for _, cpt := range c.Concepts() {
		cp.Queries = append(cp.Queries, cpt.Name)
	}
	if len(cp.Queries) == 0 {
		return nil, fmt.Errorf("loadgen: net has no e-commerce concepts to query")
	}
	cp.Sessions = c.SampleSessions(sessions)
	if len(cp.Sessions) == 0 {
		// No click log (snapshot-loaded net): synthesize plausible sessions
		// from small item IDs — item IDs are dense and start low.
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < sessions; i++ {
			n := 2 + rng.Intn(4)
			s := make([]int, n)
			for j := range s {
				s[j] = rng.Intn(512)
			}
			cp.Sessions = append(cp.Sessions, s)
		}
	}
	return cp, nil
}

// Op is one generated request: a search query or a recommend session.
type Op struct {
	Recommend bool
	Query     string // search query text (unescaped) when !Recommend
	Session   []int  // viewed item IDs when Recommend
}

// Mix generates ops from a named distribution. A Mix is NOT safe for
// concurrent use — the open-loop driver draws from it on its single
// generator goroutine.
type Mix struct {
	Name string

	corpus      *Corpus
	rng         *rand.Rand
	zipf        *rand.Zipf
	adversarial bool
	recFrac     float64
	missCount   int // adversarial miss-query counter, makes every miss unique
}

// MixNames lists the supported distributions.
var MixNames = []string{"uniform", "zipf", "adversarial"}

// NewMix builds a generator over the corpus:
//
//   - "uniform": every concept equally likely — the cache-friendliest
//     realistic load.
//   - "zipf": hot-key skew (s=1.1), the shape production query logs
//     actually have; a small working set dominates, so caches help and
//     the miss tail is what matters.
//   - "adversarial": cache-busting — most queries are unique multi-token
//     misses that force the full segmentation/voting scatter, sessions
//     mix in unknown item IDs. This is the mix that exposes the uncached
//     engine path and the admission gate.
func NewMix(name string, corpus *Corpus, seed int64) (*Mix, error) {
	m := &Mix{Name: name, corpus: corpus, rng: rand.New(rand.NewSource(seed)), recFrac: 0.3}
	switch name {
	case "uniform":
	case "zipf":
		m.zipf = rand.NewZipf(m.rng, 1.1, 1, uint64(len(corpus.Queries)-1))
	case "adversarial":
		m.adversarial = true
	default:
		return nil, fmt.Errorf("loadgen: unknown mix %q (want one of %s)", name, strings.Join(MixNames, "/"))
	}
	return m, nil
}

// Next draws one op.
func (m *Mix) Next() Op {
	if m.rng.Float64() < m.recFrac {
		return Op{Recommend: true, Session: m.session()}
	}
	return Op{Query: m.query()}
}

func (m *Mix) query() string {
	qs := m.corpus.Queries
	switch {
	case m.zipf != nil:
		return qs[int(m.zipf.Uint64())]
	case m.adversarial:
		switch m.rng.Intn(10) {
		case 0, 1: // some real traffic keeps the comparison honest
			return qs[m.rng.Intn(len(qs))]
		case 2, 3, 4: // token salad of two real concepts: miss that still votes
			a, b := qs[m.rng.Intn(len(qs))], qs[m.rng.Intn(len(qs))]
			return a + " " + b
		default: // unique never-seen query: full miss, never a cache hit
			m.missCount++
			return qs[m.rng.Intn(len(qs))] + " zzq" + strconv.Itoa(m.missCount)
		}
	default:
		return qs[m.rng.Intn(len(qs))]
	}
}

func (m *Mix) session() []int {
	ss := m.corpus.Sessions
	s := ss[m.rng.Intn(len(ss))]
	if !m.adversarial {
		return s
	}
	// Adversarial sessions splice in unknown item IDs and permute, so the
	// session-key cache misses and some votes resolve to nothing.
	out := make([]int, 0, len(s)+1)
	out = append(out, s...)
	out = append(out, 1_000_000+m.rng.Intn(1_000_000))
	m.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
