// Server-vs-client histogram cross-check: after a phase, scrape the
// server's /metrics, reconstruct its per-endpoint latency histograms
// onto the shared obs.Hist bucket layout, and assert they agree with the
// client-observed distribution. The two sides measure with identical
// buckets (the histogram was promoted to internal/obs for exactly this),
// so disagreement beyond bucket error plus network overhead means a
// telemetry bug — not measurement noise to shrug at.
package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"alicoco/internal/obs"
)

// CrossCheckEndpoints are the endpoint label values of the serving
// histogram the load driver actually exercises (GET /search,
// POST /search/batch, GET /recommend).
var CrossCheckEndpoints = []string{"search", "search_batch", "recommend"}

// Scraper snapshots a server's latency telemetry via /metrics.
type Scraper struct {
	BaseURL string
	// Family is the histogram family name to reconstruct
	// (serve.MetricsHistogramName for the production server).
	Family string
	Client *http.Client
}

// Scrape fetches and strictly parses /metrics, returning the merged
// latency snapshot over CrossCheckEndpoints. Any format violation is an
// error: the scrape doubles as a live exposition-format test.
func (s *Scraper) Scrape() (obs.HistSnapshot, error) {
	var merged obs.HistSnapshot
	client := s.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	resp, err := client.Get(s.BaseURL + "/metrics")
	if err != nil {
		return merged, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return merged, err
	}
	if resp.StatusCode != http.StatusOK {
		return merged, fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	p, err := obs.ParseText(body)
	if err != nil {
		return merged, fmt.Errorf("/metrics failed strict parse: %w", err)
	}
	for _, ep := range CrossCheckEndpoints {
		snap, err := p.HistogramSnapshot(s.Family, "endpoint", ep)
		if err != nil {
			return merged, fmt.Errorf("endpoint %s: %w", ep, err)
		}
		merged.Merge(&snap)
	}
	return merged, nil
}

// ServerObs is the server-side view of one phase, recorded into the
// phase report next to the client-side numbers.
type ServerObs struct {
	Count2xx uint64  `json:"count_2xx"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
	MeanMS   float64 `json:"mean_ms"`
}

// crossCheckMinSamples gates the quantile comparison: under a few
// hundred samples one tail request moves p99 across buckets and the
// comparison is noise.
const crossCheckMinSamples = 200

// CrossCheck compares the server-observed latency delta of one phase
// against the client's Result. It returns the server-side summary and
// the list of violated assertions (empty = the histograms agree).
//
// Count: every client 2xx was served, so the server must have at least
// client2xx observations; the excess is bounded by responses the client
// gave up on (hangs, transport errors) — the server completed and
// recorded those 2xxs after the client stopped listening.
//
// Quantiles: per request, server time (handler only) <= client time
// (handler + network), so server quantiles sit at or below the client's,
// within one histogram bucket (12.5%) plus a small absolute term; and
// the client must not exceed the server by more than loopback overhead
// and scheduling jitter allow.
func CrossCheck(phase string, delta obs.HistSnapshot, r *Result) (ServerObs, []string) {
	so := ServerObs{
		Count2xx: delta.Count(),
		P50MS:    float64(delta.Quantile(0.50).Microseconds()) / 1000,
		P99MS:    float64(delta.Quantile(0.99).Microseconds()) / 1000,
		MeanMS:   float64(delta.Mean().Microseconds()) / 1000,
	}
	var viols []string
	c := r.Counts
	client2xx := c.OK + c.LateOK
	slack := c.Hang + c.NetErr + 2
	if so.Count2xx < client2xx {
		viols = append(viols, fmt.Sprintf(
			"%s: server recorded %d 2xx, client observed %d — server histogram is losing observations",
			phase, so.Count2xx, client2xx))
	}
	if so.Count2xx > client2xx+slack {
		viols = append(viols, fmt.Sprintf(
			"%s: server recorded %d 2xx, client observed %d (+%d slack) — server histogram is over-counting",
			phase, so.Count2xx, client2xx, slack))
	}
	if client2xx < crossCheckMinSamples {
		return so, viols
	}
	for _, q := range []float64{0.50, 0.99} {
		server := delta.Quantile(q)
		client := r.Lat.Quantile(q)
		// Server at or below client, within bucket error + 5ms absolute.
		if float64(server) > float64(client)*1.25+float64(5*time.Millisecond) {
			viols = append(viols, fmt.Sprintf(
				"%s: server p%g %v above client p%g %v — server cannot be slower than what clients saw",
				phase, q*100, server, q*100, client))
		}
		// Client within 2x server + 150ms: loopback overhead cannot
		// plausibly exceed that, so a larger gap means the server histogram
		// is under-measuring.
		if float64(client) > float64(server)*2+float64(150*time.Millisecond) {
			viols = append(viols, fmt.Sprintf(
				"%s: client p%g %v far above server p%g %v — server histogram is under-measuring",
				phase, q*100, client, q*100, server))
		}
	}
	return so, viols
}
