package loadgen

import (
	"fmt"
	"time"
)

// SLO is what the serve layer promises under overload and chaos, checked
// against a phase's measurements:
//
//   - no admitted request is silently sat on (zero hangs at the cap),
//   - overload answers are 429s, never 5xx,
//   - the work that IS admitted finishes inside its deadline (p99 of
//     successes within Deadline+grace; stragglers show up as LateOK),
//   - shedding keeps the system productive: goodput under chaos stays
//     above GoodputFloor x a no-chaos baseline instead of collapsing.
type SLO struct {
	Deadline time.Duration
	// MaxLateFrac bounds LateOK/(OK+LateOK): admitted-but-late successes.
	// A little client-side scheduling noise is unavoidable at high
	// concurrency; default 0.01.
	MaxLateFrac float64
	// GoodputFloor is the fraction of baseline goodput a chaos phase must
	// retain; default 0.5.
	GoodputFloor float64
}

// Check asserts the always-on SLOs on one phase. Returned strings are
// human-readable violations; empty means the phase passed.
func (s SLO) Check(r *Result) []string {
	var v []string
	c := &r.Counts
	if c.ServerErr > 0 {
		v = append(v, fmt.Sprintf("%s: %d responses were 5xx (overload must shed with 429, never error)", r.Name, c.ServerErr))
	}
	if c.Hang > 0 {
		v = append(v, fmt.Sprintf("%s: %d requests hung past the %v cap (admitted work must finish or be canceled)", r.Name, c.Hang, HangCap(s.Deadline)))
	}
	ok, late := c.OK, c.LateOK
	if total := ok + late; total > 0 {
		maxLate := s.MaxLateFrac
		if maxLate == 0 {
			maxLate = 0.01
		}
		if frac := float64(late) / float64(total); frac > maxLate {
			v = append(v, fmt.Sprintf("%s: %.1f%% of successes blew the %v deadline (max %.1f%%) — p99 %v",
				r.Name, frac*100, s.Deadline, maxLate*100, r.Lat.Quantile(0.99)))
		}
	}
	if ok == 0 && c.Sent > 0 {
		v = append(v, fmt.Sprintf("%s: zero in-deadline successes out of %d sent", r.Name, c.Sent))
	}
	return v
}

// CheckGoodput asserts a chaos phase retained enough of the baseline's
// goodput. Both phases should have run the same mix and offered rate.
func (s SLO) CheckGoodput(baseline, chaos *Result) []string {
	floor := s.GoodputFloor
	if floor == 0 {
		floor = 0.5
	}
	if chaos.Goodput < baseline.Goodput*floor {
		return []string{fmt.Sprintf("%s: goodput collapsed under chaos: %.1f req/s vs %.1f baseline (floor %.0f%%)",
			chaos.Name, chaos.Goodput, baseline.Goodput, floor*100)}
	}
	return nil
}
