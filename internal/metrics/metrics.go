// Package metrics implements the evaluation measures used throughout the
// paper's Section 7: MAP, MRR, precision-at-k for ranking (hypernym
// discovery), AUC and F1 for classification and matching, and span-level
// precision/recall/F1 for sequence labeling.
package metrics

import "sort"

// Ranking holds one query's ranked candidate relevance judgments, best
// score first.
type Ranking struct {
	Relevant []bool // Relevant[i] = candidate at rank i is a true positive
}

// AveragePrecision returns AP for one ranking (0 if no relevant items).
func (r Ranking) AveragePrecision() float64 {
	var hits, sum float64
	for i, rel := range r.Relevant {
		if rel {
			hits++
			sum += hits / float64(i+1)
		}
	}
	if hits == 0 {
		return 0
	}
	return sum / hits
}

// ReciprocalRank returns 1/rank of the first relevant item (0 if none).
func (r Ranking) ReciprocalRank() float64 {
	for i, rel := range r.Relevant {
		if rel {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// PrecisionAt returns the fraction of relevant items in the top k.
func (r Ranking) PrecisionAt(k int) float64 {
	if k <= 0 {
		return 0
	}
	n := k
	if n > len(r.Relevant) {
		n = len(r.Relevant)
	}
	if n == 0 {
		return 0
	}
	hits := 0
	for i := 0; i < n; i++ {
		if r.Relevant[i] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// MAP returns the mean average precision over queries.
func MAP(rankings []Ranking) float64 {
	if len(rankings) == 0 {
		return 0
	}
	var s float64
	for _, r := range rankings {
		s += r.AveragePrecision()
	}
	return s / float64(len(rankings))
}

// MRR returns the mean reciprocal rank over queries.
func MRR(rankings []Ranking) float64 {
	if len(rankings) == 0 {
		return 0
	}
	var s float64
	for _, r := range rankings {
		s += r.ReciprocalRank()
	}
	return s / float64(len(rankings))
}

// MeanPrecisionAt returns mean P@k over queries.
func MeanPrecisionAt(rankings []Ranking, k int) float64 {
	if len(rankings) == 0 {
		return 0
	}
	var s float64
	for _, r := range rankings {
		s += r.PrecisionAt(k)
	}
	return s / float64(len(rankings))
}

// RankScores builds a Ranking by sorting candidates by score descending.
// Ties break by original order (stable).
func RankScores(scores []float64, labels []bool) Ranking {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	rel := make([]bool, len(idx))
	for rank, i := range idx {
		rel[rank] = labels[i]
	}
	return Ranking{Relevant: rel}
}

// AUC returns the area under the ROC curve for scored binary labels,
// handling ties by assigning half credit. Returns 0.5 when one class is
// absent.
func AUC(scores []float64, labels []bool) float64 {
	type pair struct {
		s   float64
		pos bool
	}
	ps := make([]pair, len(scores))
	nPos, nNeg := 0, 0
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
		if labels[i] {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].s < ps[b].s })
	// Rank-sum (Mann-Whitney) with average ranks for ties.
	ranks := make([]float64, len(ps))
	for i := 0; i < len(ps); {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		i = j
	}
	var sumPos float64
	for i, p := range ps {
		if p.pos {
			sumPos += ranks[i]
		}
	}
	return (sumPos - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
}

// Confusion counts binary classification outcomes.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one prediction.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && !actual:
		c.TN++
	default:
		c.FN++
	}
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct predictions.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// SpanKey identifies a labeled span for span-level scoring.
type SpanKey struct {
	Start, End int
	Label      string
}

// SpanPRF1 computes span-level precision/recall/F1 between predicted and
// gold span sets (exact boundary + label match), accumulating into c.
func SpanPRF1(c *Confusion, pred, gold []SpanKey) {
	goldSet := make(map[SpanKey]bool, len(gold))
	for _, g := range gold {
		goldSet[g] = true
	}
	matched := 0
	for _, p := range pred {
		if goldSet[p] {
			c.TP++
			matched++
			delete(goldSet, p)
		} else {
			c.FP++
		}
	}
	c.FN += len(gold) - matched
}
