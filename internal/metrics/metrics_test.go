package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAveragePrecision(t *testing.T) {
	r := Ranking{Relevant: []bool{true, false, true}}
	// AP = (1/1 + 2/3) / 2
	if !almost(r.AveragePrecision(), (1.0+2.0/3.0)/2) {
		t.Fatalf("AP: got %v", r.AveragePrecision())
	}
	if (Ranking{}).AveragePrecision() != 0 {
		t.Fatal("empty AP should be 0")
	}
	if (Ranking{Relevant: []bool{false, false}}).AveragePrecision() != 0 {
		t.Fatal("no-relevant AP should be 0")
	}
}

func TestReciprocalRank(t *testing.T) {
	if !almost((Ranking{Relevant: []bool{false, false, true}}).ReciprocalRank(), 1.0/3) {
		t.Fatal("RR wrong")
	}
	if (Ranking{Relevant: []bool{false}}).ReciprocalRank() != 0 {
		t.Fatal("RR with no hit should be 0")
	}
}

func TestPrecisionAt(t *testing.T) {
	r := Ranking{Relevant: []bool{true, false, true, true}}
	if !almost(r.PrecisionAt(1), 1) {
		t.Fatal("P@1 wrong")
	}
	if !almost(r.PrecisionAt(3), 2.0/3) {
		t.Fatal("P@3 wrong")
	}
	// k beyond length counts misses.
	if !almost(r.PrecisionAt(8), 3.0/8) {
		t.Fatalf("P@8: got %v", r.PrecisionAt(8))
	}
	if r.PrecisionAt(0) != 0 {
		t.Fatal("P@0 should be 0")
	}
}

func TestMAPMRRMeanP(t *testing.T) {
	rs := []Ranking{
		{Relevant: []bool{true}},
		{Relevant: []bool{false, true}},
	}
	if !almost(MAP(rs), (1.0+0.5)/2) {
		t.Fatalf("MAP: got %v", MAP(rs))
	}
	if !almost(MRR(rs), (1.0+0.5)/2) {
		t.Fatalf("MRR: got %v", MRR(rs))
	}
	if !almost(MeanPrecisionAt(rs, 1), 0.5) {
		t.Fatal("mean P@1 wrong")
	}
	if MAP(nil) != 0 || MRR(nil) != 0 || MeanPrecisionAt(nil, 1) != 0 {
		t.Fatal("empty aggregates should be 0")
	}
}

func TestRankScores(t *testing.T) {
	r := RankScores([]float64{0.1, 0.9, 0.5}, []bool{false, true, false})
	if !r.Relevant[0] || r.Relevant[1] || r.Relevant[2] {
		t.Fatalf("RankScores: got %v", r.Relevant)
	}
}

func TestAUCPerfectAndInverted(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if !almost(AUC(scores, labels), 1) {
		t.Fatalf("perfect AUC: got %v", AUC(scores, labels))
	}
	inverted := []bool{false, false, true, true}
	if !almost(AUC(scores, inverted), 0) {
		t.Fatalf("inverted AUC: got %v", AUC(scores, inverted))
	}
}

func TestAUCTiesAndDegenerate(t *testing.T) {
	// All scores tied: AUC should be 0.5.
	if !almost(AUC([]float64{1, 1, 1, 1}, []bool{true, false, true, false}), 0.5) {
		t.Fatal("tied AUC should be 0.5")
	}
	if AUC([]float64{1, 2}, []bool{true, true}) != 0.5 {
		t.Fatal("single-class AUC should be 0.5")
	}
}

// Property: AUC equals the probability a random positive outranks a random
// negative (checked by brute force).
func TestPropertyAUCPairwise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		scores := make([]float64, n)
		labels := make([]bool, n)
		pos := 0
		for i := range scores {
			scores[i] = float64(rng.Intn(6)) // deliberate ties
			labels[i] = rng.Intn(2) == 0
			if labels[i] {
				pos++
			}
		}
		if pos == 0 || pos == n {
			return true
		}
		var wins, total float64
		for i := range scores {
			if !labels[i] {
				continue
			}
			for j := range scores {
				if labels[j] {
					continue
				}
				total++
				switch {
				case scores[i] > scores[j]:
					wins++
				case scores[i] == scores[j]:
					wins += 0.5
				}
			}
		}
		return almost(AUC(scores, labels), wins/total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConfusion(t *testing.T) {
	var c Confusion
	c.Add(true, true)
	c.Add(true, false)
	c.Add(false, false)
	c.Add(false, true)
	if c.TP != 1 || c.FP != 1 || c.TN != 1 || c.FN != 1 {
		t.Fatalf("confusion: %+v", c)
	}
	if !almost(c.Precision(), 0.5) || !almost(c.Recall(), 0.5) || !almost(c.F1(), 0.5) || !almost(c.Accuracy(), 0.5) {
		t.Fatal("PRF/accuracy wrong")
	}
	var empty Confusion
	if empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 || empty.Accuracy() != 0 {
		t.Fatal("empty confusion metrics should be 0")
	}
}

func TestSpanPRF1(t *testing.T) {
	var c Confusion
	pred := []SpanKey{{0, 2, "A"}, {3, 4, "B"}}
	gold := []SpanKey{{0, 2, "A"}, {3, 4, "C"}}
	SpanPRF1(&c, pred, gold)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 {
		t.Fatalf("span confusion: %+v", c)
	}
}

func TestSpanPRF1DuplicatePredictions(t *testing.T) {
	var c Confusion
	pred := []SpanKey{{0, 1, "A"}, {0, 1, "A"}}
	gold := []SpanKey{{0, 1, "A"}}
	SpanPRF1(&c, pred, gold)
	if c.TP != 1 || c.FP != 1 {
		t.Fatalf("duplicate pred should count once as TP: %+v", c)
	}
}
