// Scenario planner: the intro's motivating user — "I'm hosting a barbecue
// next week, what do I need?" — answered by walking the concept net: resolve
// the scenario concept, read its interpretation, and assemble a shopping
// list grouped by category, one suggested item each.
package main

import (
	"fmt"
	"log"
	"strings"

	"alicoco"
)

func main() {
	coco, err := alicoco.Build(alicoco.Small())
	if err != nil {
		log.Fatal(err)
	}

	for _, scenario := range []string{"outdoor barbecue", "camping trip", "keep warm for kids"} {
		cpt, ok := coco.LookupConcept(scenario)
		if !ok {
			log.Fatalf("scenario %q not in the net", scenario)
		}
		fmt.Printf("planning %q — understood as %v\n", scenario, cpt.Primitives)

		// One suggested item per category the scenario requires.
		res := coco.Search(scenario, 50)
		if len(res.Cards) == 0 {
			fmt.Println("  nothing found")
			continue
		}
		seen := make(map[string]bool)
		fmt.Println("  shopping list:")
		for _, item := range res.Cards[0].Items {
			if seen[item.Category] {
				continue
			}
			seen[item.Category] = true
			fmt.Printf("    %-12s -> %s\n", item.Category, item.Title)
		}
		// The net also explains WHY via the gloss of the scenario's
		// anchor primitive (prefer the Event/Time/Function reading).
		anchor := ""
		for _, prim := range cpt.Primitives {
			if strings.HasPrefix(prim, "Event:") || strings.HasPrefix(prim, "Time:") || strings.HasPrefix(prim, "Function:") {
				anchor = prim
				break
			}
		}
		if anchor == "" && len(cpt.Primitives) > 0 {
			anchor = cpt.Primitives[0]
		}
		if anchor != "" {
			name := anchor[strings.Index(anchor, ":")+1:]
			for _, gloss := range coco.Glosses(name) {
				if strings.Contains(gloss, "occasion") || strings.Contains(gloss, "time") || strings.Contains(gloss, "function") {
					fmt.Printf("  because: %s\n", gloss)
					break
				}
			}
		}
		fmt.Println()
	}
}
