// Cognitive recommendation (Figure 2b/c of the paper): from a user's viewed
// items the engine infers the latent shopping scenario, recommends the other
// items that scenario needs, and explains itself with the concept name as
// the recommendation reason.
package main

import (
	"fmt"
	"log"

	"alicoco"
)

func main() {
	coco, err := alicoco.Build(alicoco.Small())
	if err != nil {
		log.Fatal(err)
	}

	// Simulated shopping sessions: each is a list of item IDs the user
	// browsed while (silently) planning some scenario.
	sessions := coco.SampleSessions(3)
	items := coco.Items()
	byID := make(map[int]alicoco.Item, len(items))
	for _, it := range items {
		byID[it.ID] = it
	}

	for i, viewed := range sessions {
		fmt.Printf("session %d — user viewed:\n", i+1)
		for _, id := range viewed {
			fmt.Printf("  * %s\n", byID[id].Title)
		}
		rec, ok := coco.Recommend(viewed, 5)
		if !ok {
			fmt.Println("  (no recommendation)")
			continue
		}
		// The reason string is what the user sees on the card (Figure 2c).
		fmt.Printf("  => card %q (reason: %q)\n", rec.Card.Name, rec.Reason)
		for _, item := range rec.Card.Items {
			fmt.Printf("     - %s (%s)\n", item.Title, item.Category)
		}
		fmt.Println()
	}
}
