// Semantic search (Figure 2a of the paper): a user types a need — even
// reordered or vague — and the engine surfaces a concept card with the items
// the scenario requires, including items whose titles share no words with
// the query (semantic drift).
package main

import (
	"fmt"
	"log"

	"alicoco"
)

func main() {
	coco, err := alicoco.Build(alicoco.Small())
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		"outdoor barbecue",          // exact concept
		"barbecue outdoor",          // reordered keywords (the intro's example)
		"mid-autumn festival gifts", // drift: items (mooncake, tea) share no query tokens
		"tools for baking",          // the Figure 2a example
		"grill",                     // plain category query still works
	}
	for _, q := range queries {
		fmt.Printf("query: %q\n", q)
		res := coco.Search(q, 5)
		if len(res.Cards) > 0 {
			for _, card := range res.Cards {
				fmt.Printf("  card %q:\n", card.Name)
				for _, item := range card.Items {
					fmt.Printf("    - %s\n", item.Title)
				}
			}
		} else {
			for i, item := range res.Items {
				if i >= 5 {
					break
				}
				fmt.Printf("  item: %s\n", item.Title)
			}
		}
		fmt.Println()
	}
}
