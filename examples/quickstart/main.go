// Quickstart: build a small concept net, inspect it, and run one query.
package main

import (
	"fmt"
	"log"

	"alicoco"
)

func main() {
	coco, err := alicoco.Build(alicoco.Small())
	if err != nil {
		log.Fatal(err)
	}

	// The four layers of the net (Figure 1 of the paper).
	s := coco.Stats()
	fmt.Println("AliCoCo built:")
	fmt.Printf("  %d taxonomy classes, %d primitive concepts,\n", s.Classes, s.Primitives)
	fmt.Printf("  %d e-commerce concepts, %d items, %d relations\n\n", s.EConcepts, s.Items, s.Relations)

	// A shopping-scenario query: the search engine answers with a concept
	// card, not just keyword hits.
	res := coco.Search("outdoor barbecue", 5)
	for _, card := range res.Cards {
		fmt.Printf("concept card: %q\n", card.Name)
		for _, item := range card.Items {
			fmt.Printf("  - %s (%s)\n", item.Title, item.Category)
		}
	}

	// The net can explain what a concept means via its primitive concepts.
	cpt, _ := coco.LookupConcept("outdoor barbecue")
	fmt.Printf("\ninterpretation: %v (%d associated items)\n", cpt.Primitives, cpt.ItemCount)

	// And it knows taxonomy: coat isA outerwear isA clothing.
	fmt.Printf("hypernyms of coat: %v\n", coco.Hypernyms("coat"))
}
