package alicoco

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"alicoco/internal/faultfs"
)

// These tests prove the deadline propagates *through* the sharded
// scatter-gather, not just to its edge: a faultfs query-time delay on the
// shard boundaries must make a tight deadline cancel the in-flight query
// within budget, and an ample deadline must still produce results
// identical to the unfaulted, unbounded path. They arm process-global
// fault injection, so they never run in t.Parallel.

// buildShardedSlow builds a sharded small net with caches off, so every
// query takes the uncached engine path where ctx checks and shard-boundary
// probes live.
func buildShardedSlow(t *testing.T) *CoCo {
	t.Helper()
	c, err := BuildSharded(Small(), 4)
	if err != nil {
		t.Fatal(err)
	}
	c.SetQueryCacheCapacity(0)
	return c
}

// slowQueries are cache-missing, non-exact-match queries that force the
// voting + collection phases (many shard crossings each).
var slowQueries = []string{
	"outdoor barbecue grill party",
	"warm winter jacket hiking",
	"fresh fruit juice breakfast",
}

func TestDeadlinePropagatesThroughShardedSearch(t *testing.T) {
	c := buildShardedSlow(t)

	// Every shard-boundary crossing costs 10ms; the exact-match scatter
	// alone crosses all 4 shards (40ms), so a 25ms deadline must expire
	// mid-engine for any non-exact query.
	restore := faultfs.InjectQuery(faultfs.QueryFault{Shard: -1, Delay: 10 * time.Millisecond})
	defer restore()

	const deadline = 25 * time.Millisecond
	for _, q := range slowQueries {
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		start := time.Now()
		_, err := c.SearchCtx(ctx, q, 12)
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("SearchCtx(%q) with slow shards: err = %v, want DeadlineExceeded", q, err)
		}
		// Cancellation must land at the next shard boundary: one boundary's
		// injected delay past the deadline, plus generous CI scheduling
		// slack — not the seconds a full un-canceled scatter would take.
		if elapsed > deadline+500*time.Millisecond {
			t.Fatalf("SearchCtx(%q) returned %v after deadline %v — not canceled at a shard boundary", q, elapsed, deadline)
		}
	}
}

func TestDeadlinePropagatesThroughShardedRecommend(t *testing.T) {
	c := buildShardedSlow(t)
	sessions := c.SampleSessions(4)
	if len(sessions) == 0 {
		t.Skip("no sessions at this scale")
	}

	// One crossing (15ms) exceeds the whole deadline: any session with at
	// least one resolvable item must cancel at the next boundary check.
	restore := faultfs.InjectQuery(faultfs.QueryFault{Shard: -1, Delay: 15 * time.Millisecond})
	defer restore()

	const deadline = 10 * time.Millisecond
	canceled := false
	for _, sess := range sessions {
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		start := time.Now()
		_, _, err := c.RecommendCtx(ctx, sess, 10)
		elapsed := time.Since(start)
		cancel()
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("RecommendCtx: err = %v, want DeadlineExceeded", err)
			}
			canceled = true
			if elapsed > deadline+500*time.Millisecond {
				t.Fatalf("RecommendCtx returned %v after deadline %v", elapsed, deadline)
			}
		}
	}
	if !canceled {
		t.Fatal("no session hit the deadline despite slow shards — delay not propagating")
	}
}

func TestDeadlineBatchCanceledBySlowShard(t *testing.T) {
	c := buildShardedSlow(t)

	restore := faultfs.InjectQuery(faultfs.QueryFault{Shard: 1, Delay: 2 * time.Millisecond})
	defer restore()

	queries := make([]string, 0, 32)
	for i := 0; i < 32; i++ {
		queries = append(queries, slowQueries[i%len(slowQueries)])
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := c.SearchBatchCtx(ctx, queries, 12)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("batch with one slow shard: err = %v (res len %d), want DeadlineExceeded", err, len(res))
	}
	if res != nil {
		t.Fatal("batch returned partial results alongside the ctx error")
	}
	if elapsed > time.Second {
		t.Fatalf("batch took %v to cancel — fan-out stalled on the slow shard", elapsed)
	}
}

// TestAmpleDeadlineIdenticalUnderSlowShard: with the fault still armed but
// a deadline far above the injected delays, every entry point must return
// results deeply equal to the unbounded, unfaulted call — slow is not
// wrong.
func TestAmpleDeadlineIdenticalUnderSlowShard(t *testing.T) {
	c := buildShardedSlow(t)

	want := make([]SearchResult, len(slowQueries))
	for i, q := range slowQueries {
		want[i] = c.Search(q, 12)
	}
	sessions := c.SampleSessions(3)
	wantRec := make([]Recommendation, len(sessions))
	wantOK := make([]bool, len(sessions))
	for i, sess := range sessions {
		wantRec[i], wantOK[i] = c.Recommend(sess, 10)
	}

	restore := faultfs.InjectQuery(faultfs.QueryFault{Shard: 2, Delay: 200 * time.Microsecond})
	defer restore()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, q := range slowQueries {
		got, err := c.SearchCtx(ctx, q, 12)
		if err != nil {
			t.Fatalf("SearchCtx(%q) ample deadline: %v", q, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("SearchCtx(%q) differs under slow shard with ample deadline", q)
		}
	}
	batch, err := c.SearchBatchCtx(ctx, slowQueries, 12)
	if err != nil {
		t.Fatalf("SearchBatchCtx ample deadline: %v", err)
	}
	if !reflect.DeepEqual(batch, want) {
		t.Fatal("SearchBatchCtx differs under slow shard with ample deadline")
	}
	for i, sess := range sessions {
		rec, ok, err := c.RecommendCtx(ctx, sess, 10)
		if err != nil {
			t.Fatalf("RecommendCtx ample deadline: %v", err)
		}
		if ok != wantOK[i] || !reflect.DeepEqual(rec, wantRec[i]) {
			t.Fatalf("RecommendCtx session %d differs under slow shard with ample deadline", i)
		}
	}
}
