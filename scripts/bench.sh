#!/usr/bin/env bash
# bench.sh — run the core serving benchmarks and record the perf trajectory.
#
# Usage: scripts/bench.sh [benchtime]
#
# Runs the serving benchmark set across the packages that carry it — the
# BenchmarkFrozenVsLocked* pairs (plus the raw store benchmark), the
# BenchmarkColdStart{Live,Frozen} pair, the BenchmarkParallelFrozen*
# concurrent-serving benchmarks, the BenchmarkBatchServe* batch-vs-
# sequential pairs, the BenchmarkSearchIntoReused zero-allocation headline,
# BenchmarkSegmentInto (pooled DP scratch vs allocating MaxMatch), the
# BenchmarkServeCacheHit/Miss end-to-end query-cache pair,
# BenchmarkBatchDecode (fixed-shape scanner vs encoding/json), and the
# BenchmarkSharded* set (N=1 vs N=4 partition reads, whole-net vs sharded
# freeze) — and writes BENCH_core.json at the repo root: one record per
# benchmark with ns/op, B/op, and allocs/op.
#
# Before overwriting, the committed BENCH_core.json is kept and a
# BENCH_delta table (ns/op and allocs/op, old vs new, per benchmark) is
# printed, so every PR's perf trajectory is visible without manual diffing.
# The run fails if any required benchmark is missing from the output —
# renaming or breaking a tracked benchmark cannot slip through silently.
set -euo pipefail

cd "$(dirname "$0")/.."
BENCHTIME="${1:-1s}"
OUT=BENCH_core.json
RAW="$(mktemp)"
OLD="$(mktemp)"
trap 'rm -f "$RAW" "$OLD"' EXIT

# Preserve the committed baseline for the delta report.
if [ -f "$OUT" ]; then
    cp "$OUT" "$OLD"
else
    echo "[]" > "$OLD"
fi

go test -run '^$' \
    -bench 'FrozenVsLocked|FrozenSearchEngine|NetQueries|ColdStart|ParallelFrozen|BatchServe|SearchIntoReused|SegmentInto|ServeCache|BatchDecode|Sharded' \
    -benchmem -benchtime="$BENCHTIME" \
    . ./internal/text ./internal/serve | tee "$RAW"

awk '
BEGIN { print "[" ; first = 1 }
/^Benchmark/ {
    name = $1
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")     ns = $(i-1)
        if ($(i) == "B/op")      bytes = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (!first) print ","
    first = 0
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n]" }
' "$RAW" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"

# Every benchmark the trajectory tracks must be present; a silent drop
# (renamed benchmark, regex drift, build skip) fails the run.
for required in \
    BenchmarkFrozenVsLockedOut BenchmarkFrozenVsLockedRecommend \
    BenchmarkColdStartFrozen BenchmarkParallelFrozenSearch \
    BenchmarkBatchServeSearch BenchmarkSearchIntoReused \
    BenchmarkSegmentInto BenchmarkServeCacheHit BenchmarkServeCacheMiss \
    BenchmarkBatchDecode BenchmarkShardedSearch/N=1 BenchmarkShardedSearch/N=4 \
    BenchmarkShardedRecommend/N=4 BenchmarkShardedFreeze; do
    if ! grep -q "\"name\": \"$required" "$OUT"; then
        echo "bench.sh: required benchmark $required missing from $OUT" >&2
        exit 1
    fi
done

# BENCH_delta: fresh run vs the committed baseline.
echo
echo "BENCH_delta (vs committed $OUT):"
awk '
function field(s, key,   i, t) {
    i = index(s, "\"" key "\": ")
    if (i == 0) return ""
    t = substr(s, i + length(key) + 4)
    sub(/[,}].*/, "", t)
    gsub(/[\" ]/, "", t)
    return t
}
NR == FNR {
    n = field($0, "name")
    if (n != "") { oldns[n] = field($0, "ns_per_op"); oldal[n] = field($0, "allocs_per_op") }
    next
}
{
    n = field($0, "name")
    if (n == "") next
    ns = field($0, "ns_per_op"); al = field($0, "allocs_per_op")
    if (n in oldns) {
        pct = (oldns[n] > 0) ? (ns - oldns[n]) / oldns[n] * 100 : 0
        dal = (al != "" && oldal[n] != "") ? sprintf("%s -> %s", oldal[n], al) : "-"
        printf "  %-55s %12s -> %10s ns/op  %+7.1f%%   allocs %s\n", n, oldns[n], ns, pct, dal
    } else {
        printf "  %-55s %12s -> %10s ns/op      (new)   allocs %s\n", n, "-", ns, al
    }
}
' "$OLD" "$OUT"
