#!/usr/bin/env bash
# bench.sh — run the core serving benchmarks and record the perf trajectory.
#
# Usage: scripts/bench.sh [benchtime]
#
# Runs the BenchmarkFrozenVsLocked* pairs (plus the raw store benchmark),
# the BenchmarkColdStart{Live,Frozen} pair, the BenchmarkParallelFrozen*
# concurrent-serving benchmarks, the BenchmarkBatchServe* batch-vs-
# sequential pairs, and the BenchmarkSearchIntoReused zero-allocation
# headline, and writes BENCH_core.json at the repo root: one record per
# benchmark with ns/op, B/op, and allocs/op, so future PRs can diff serving
# performance (allocation counts included) against this one.
set -euo pipefail

cd "$(dirname "$0")/.."
BENCHTIME="${1:-1s}"
OUT=BENCH_core.json
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
    -bench 'FrozenVsLocked|FrozenSearchEngine|NetQueries|ColdStart|ParallelFrozen|BatchServe|SearchIntoReused' \
    -benchmem -benchtime="$BENCHTIME" . | tee "$RAW"

awk '
BEGIN { print "[" ; first = 1 }
/^Benchmark/ {
    name = $1
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")     ns = $(i-1)
        if ($(i) == "B/op")      bytes = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (!first) print ","
    first = 0
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n]" }
' "$RAW" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
