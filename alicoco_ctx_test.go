package alicoco

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestCtxVariantsMatchPlainCalls: with a live context the *Ctx entry
// points answer exactly like their plain counterparts.
func TestCtxVariantsMatchPlainCalls(t *testing.T) {
	c := buildSmall(t)
	ctx := context.Background()

	plain := c.Search("outdoor barbecue", 5)
	got, err := c.SearchCtx(ctx, "outdoor barbecue", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, got) {
		t.Fatal("SearchCtx differs from Search")
	}

	sessions := c.SampleSessions(3)
	if len(sessions) == 0 {
		t.Fatal("no sessions")
	}
	plainRec, plainOK := c.Recommend(sessions[0], 5)
	gotRec, gotOK, err := c.RecommendCtx(ctx, sessions[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if plainOK != gotOK || !reflect.DeepEqual(plainRec, gotRec) {
		t.Fatal("RecommendCtx differs from Recommend")
	}

	queries := []string{"outdoor barbecue", "winter coat", "grill"}
	plainBatch := c.SearchBatch(queries, 5)
	gotBatch, err := c.SearchBatchCtx(ctx, queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plainBatch, gotBatch) {
		t.Fatal("SearchBatchCtx differs from SearchBatch")
	}

	plainRecs := c.RecommendBatch(sessions, 5)
	gotRecs, err := c.RecommendBatchCtx(ctx, sessions, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plainRecs, gotRecs) {
		t.Fatal("RecommendBatchCtx differs from RecommendBatch")
	}
}

// TestCtxVariantsRefuseDeadCtx: every *Ctx entry point reports the context
// error instead of dispatching once the context is done.
func TestCtxVariantsRefuseDeadCtx(t *testing.T) {
	c := buildSmall(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := c.SearchCtx(ctx, "grill", 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchCtx err = %v", err)
	}
	if _, _, err := c.RecommendCtx(ctx, []int{1, 2}, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("RecommendCtx err = %v", err)
	}
	if _, err := c.SearchBatchCtx(ctx, []string{"grill"}, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchBatchCtx err = %v", err)
	}
	if _, err := c.RecommendBatchCtx(ctx, [][]int{{1}}, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("RecommendBatchCtx err = %v", err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := c.SearchCtx(expired, "grill", 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired SearchCtx err = %v", err)
	}
}

// TestBatchCtxCancelMidFlight: canceling while a large batch fans out must
// surface the error (the partial slice is not served) without deadlocking
// the worker pool.
func TestBatchCtxCancelMidFlight(t *testing.T) {
	c := buildSmall(t)
	queries := make([]string, 512)
	for i := range queries {
		queries[i] = "outdoor barbecue"
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Cancel as soon as the batch is plausibly in flight; whichever
		// side wins the race, the call must return promptly with either a
		// complete result or ctx.Canceled.
		time.Sleep(time.Millisecond)
		cancel()
	}()
	res, err := c.SearchBatchCtx(ctx, queries, 5)
	<-done
	if err == nil {
		if len(res) != len(queries) {
			t.Fatalf("nil error with %d/%d results", len(res), len(queries))
		}
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}
