package alicoco

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// cacheTestOptions are two deliberately different builds: the handcrafted
// concepts ("outdoor barbecue") exist in both, but the item layer differs,
// so the same query answers differently — which is what lets the reload
// tests detect a stale-generation cache hit.
func cacheTestOptions() (a, b Options) {
	a = Options{Seed: 7, ItemsPerCategory: 2, Scenarios: 12, CorpusSentences: 150}
	b = Options{Seed: 11, ItemsPerCategory: 3, Scenarios: 12, CorpusSentences: 150}
	return a, b
}

// TestQueryCacheEquivalence: repeated queries served from the cache answer
// identically to the first (miss) computation and to a cache-disabled
// recomputation — over a randomized stream of search queries and sessions.
func TestQueryCacheEquivalence(t *testing.T) {
	c := buildSmall(t)
	rng := rand.New(rand.NewSource(41))
	queries := []string{"outdoor barbecue", "barbecue outdoor", "grill", "coat"}
	sessions := c.SampleSessions(6)
	if len(sessions) == 0 {
		t.Fatal("no sessions")
	}

	type outcome struct {
		res SearchResult
		rec Recommendation
		ok  bool
	}
	miss := make(map[string]outcome)
	for trial := 0; trial < 200; trial++ {
		q := queries[rng.Intn(len(queries))]
		sess := sessions[rng.Intn(len(sessions))]
		key := fmt.Sprintf("%s|%v", q, sess)
		res := c.Search(q, 8)
		rec, ok := c.Recommend(sess, 5)
		if first, seen := miss[key]; !seen {
			miss[key] = outcome{res: res, rec: rec, ok: ok}
		} else if !reflect.DeepEqual(first.res, res) || first.ok != ok || !reflect.DeepEqual(first.rec, rec) {
			t.Fatalf("trial %d: cached answer drifted for %s", trial, key)
		}
	}
	sStats, rStats := c.QueryCacheStats()
	if sStats.Hits == 0 || rStats.Hits == 0 {
		t.Fatalf("stream produced no cache hits (search %+v, recommend %+v)", sStats, rStats)
	}

	// Cache-disabled recomputation agrees with what the cache served.
	c.SetQueryCacheCapacity(0)
	for key, first := range miss {
		q := strings.SplitN(key, "|", 2)[0]
		if res := c.Search(q, 8); !reflect.DeepEqual(first.res, res) {
			t.Fatalf("uncached recomputation differs for %q:\ncached  %+v\nfresh   %+v", q, first.res, res)
		}
	}
}

// TestQueryCacheInvalidatedByRepublish: after an offline mutation
// republishes serving (inference + refreeze), queries must reflect the new
// net — entries cached against the previous generation may not surface.
func TestQueryCacheInvalidatedByRepublish(t *testing.T) {
	c := buildSmall(t)
	const q = "barbecue outdoor" // voting query: sees inferred edges
	for i := 0; i < 3; i++ {
		c.Search(q, 8) // populate the gen-1 cache
	}
	if _, err := c.InferImplicitRelations(); err != nil {
		t.Fatal(err)
	}
	got := c.Search(q, 8)
	c.SetQueryCacheCapacity(0) // force recomputation on the same snapshot
	want := c.Search(q, 8)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-republish answer came from a stale generation:\ncached %+v\nfresh  %+v", got, want)
	}
}

// TestQueryCacheNoStaleAcrossReload hammers Search and Recommend from
// several goroutines while the main goroutine hot-swaps two different
// snapshots through ReloadFrozen. Every concurrent answer must match one
// of the two snapshots exactly (never a blend), and — the stale-generation
// assertion — a query issued after a reload returns must match the
// just-loaded snapshot, not the cached answers of the previous one.
func TestQueryCacheNoStaleAcrossReload(t *testing.T) {
	optsA, optsB := cacheTestOptions()
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.fz")
	pathB := filepath.Join(dir, "b.fz")

	cA, err := Build(optsA)
	if err != nil {
		t.Fatal(err)
	}
	if err := cA.SaveFrozen(pathA); err != nil {
		t.Fatal(err)
	}
	cB, err := Build(optsB)
	if err != nil {
		t.Fatal(err)
	}
	if err := cB.SaveFrozen(pathB); err != nil {
		t.Fatal(err)
	}

	const q = "outdoor barbecue"
	session := []int{0, 1, 2}
	type canon struct {
		res SearchResult
		rec Recommendation
		ok  bool
	}
	canonOf := func(c *CoCo) canon {
		res := c.Search(q, 8)
		rec, ok := c.Recommend(session, 5)
		return canon{res: res, rec: rec, ok: ok}
	}
	canonA, canonB := canonOf(cA), canonOf(cB)
	if reflect.DeepEqual(canonA, canonB) {
		t.Fatal("the two snapshots answer identically; staleness would be undetectable")
	}

	c, err := LoadFrozen(pathA)
	if err != nil {
		t.Fatal(err)
	}
	matches := func(got canon) bool {
		return reflect.DeepEqual(got, canonA) || reflect.DeepEqual(got, canonB)
	}

	stop := make(chan struct{})
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := canonOf(c); !matches(got) {
					errc <- fmt.Errorf("answer matches neither snapshot: %+v", got)
					return
				}
			}
		}()
	}
	paths := []string{pathB, pathA}
	canons := []canon{canonB, canonA}
	for i := 0; i < 20; i++ {
		if err := c.ReloadFrozen(paths[i%2]); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		// The reload has returned, so the new generation is published:
		// a stale cache hit from the previous snapshot would show up here.
		if got := canonOf(c); !reflect.DeepEqual(got, canons[i%2]) {
			t.Fatalf("reload %d: served stale answer after swapping to %s:\ngot  %+v\nwant %+v",
				i, paths[i%2], got, canons[i%2])
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
