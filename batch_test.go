package alicoco

import (
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestSearchBatchMatchesSequential runs randomized batches — with worker
// parallelism forced on — and compares every slot against the single-query
// path under -race: batching may never change an answer or its position.
func TestSearchBatchMatchesSequential(t *testing.T) {
	c := buildSmall(t)
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(23))
	pool := []string{"outdoor barbecue", "winter coat", "grill", "coat", "zzz nothing"}
	for _, qs := range c.Internal().World.QuerySet(30) {
		pool = append(pool, strings.Join(qs.Tokens, " "))
	}
	for trial := 0; trial < 10; trial++ {
		queries := make([]string, 1+rng.Intn(40))
		for i := range queries {
			queries[i] = pool[rng.Intn(len(pool))]
		}
		batch := c.SearchBatch(queries, 10)
		if len(batch) != len(queries) {
			t.Fatalf("trial %d: %d results for %d queries", trial, len(batch), len(queries))
		}
		for i, q := range queries {
			if want := c.Search(q, 10); !reflect.DeepEqual(batch[i], want) {
				t.Fatalf("trial %d query %d (%q): batch %+v, sequential %+v", trial, i, q, batch[i], want)
			}
		}
	}
	if got := c.SearchBatch(nil, 10); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

// TestRecommendBatchMatchesSequential does the same for recommendation
// sessions, including sessions that produce no recommendation.
func TestRecommendBatchMatchesSequential(t *testing.T) {
	c := buildSmall(t)
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	sessions := c.SampleSessions(20)
	if len(sessions) == 0 {
		t.Fatal("no sessions")
	}
	sessions = append(sessions, []int{1 << 28}, nil) // unknown item and empty session
	batch := c.RecommendBatch(sessions, 5)
	if len(batch) != len(sessions) {
		t.Fatalf("%d results for %d sessions", len(batch), len(sessions))
	}
	for i, sess := range sessions {
		rec, ok := c.Recommend(sess, 5)
		if batch[i].Found != ok {
			t.Fatalf("session %d: batch found=%v, sequential ok=%v", i, batch[i].Found, ok)
		}
		if ok && !reflect.DeepEqual(batch[i].Recommendation, rec) {
			t.Fatalf("session %d: batch %+v, sequential %+v", i, batch[i].Recommendation, rec)
		}
	}
}

// TestBatchPinnedDuringRefreeze hammers SearchBatch while Refreeze
// republishes: every batch must come back complete and internally
// consistent (all slots answered, no mixed-version partial results),
// proving the batch reads one pinned snapshot.
func TestBatchPinnedDuringRefreeze(t *testing.T) {
	c := buildSmall(t)
	queries := []string{"outdoor barbecue", "grill", "winter coat"}
	want := c.SearchBatch(queries, 8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := c.Refreeze(); err != nil {
					t.Errorf("refreeze: %v", err)
					return
				}
			}
		}
	}()
	for i := 0; i < 50; i++ {
		got := c.SearchBatch(queries, 8)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("iteration %d: batch answer drifted during refreeze", i)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestServingInfoLifecycle follows the generation counter and source label
// through build, refreeze, save, and reload.
func TestServingInfoLifecycle(t *testing.T) {
	c := buildSmall(t)
	info := c.ServingInfo()
	if info.Source != "build" || info.Generation != 1 || info.Checksum != "" {
		t.Fatalf("after build: %+v", info)
	}
	if info.Nodes == 0 || info.Edges == 0 || info.PublishedAt.IsZero() {
		t.Fatalf("empty serving counts: %+v", info)
	}
	if err := c.Refreeze(); err != nil {
		t.Fatal(err)
	}
	info = c.ServingInfo()
	if info.Source != "refreeze" || info.Generation != 2 {
		t.Fatalf("after refreeze: %+v", info)
	}
	path := t.TempDir() + "/net.fz"
	if err := c.SaveFrozen(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFrozen(path)
	if err != nil {
		t.Fatal(err)
	}
	linfo := loaded.ServingInfo()
	if linfo.Source != "snapshot" || linfo.Generation != 1 || linfo.Checksum == "" {
		t.Fatalf("after load: %+v", linfo)
	}
	if linfo.Nodes != info.Nodes || linfo.Edges != info.Edges {
		t.Fatalf("loaded counts differ: %+v vs %+v", linfo, info)
	}
	if err := loaded.ReloadFrozen(path); err != nil {
		t.Fatal(err)
	}
	linfo2 := loaded.ServingInfo()
	if linfo2.Generation != 2 || linfo2.Checksum != linfo.Checksum {
		t.Fatalf("after reload: %+v", linfo2)
	}
}
