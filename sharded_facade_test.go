package alicoco

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// equivalenceQueries is a deterministic query mix: known concepts, partial
// and unknown phrases, unicode, and degenerate inputs — plus every concept
// name in the net, so each shard's owned range is exercised.
func equivalenceQueries(c *CoCo) []string {
	queries := []string{
		"outdoor barbecue", "winter coat", "grill", "coat",
		"zzz no such thing", "控制", "emoji \U0001F600", "",
	}
	for _, cpt := range c.Concepts() {
		queries = append(queries, cpt.Name)
	}
	return queries
}

// TestShardedServingEquivalence: a CoCo serving from an N-shard partition
// must answer every query path byte-identically to the unsharded build —
// search (string, bytes, batch), recommend (single, batch), concept
// lookup, hypernyms, and stats.
func TestShardedServingEquivalence(t *testing.T) {
	base := buildSmall(t)
	queries := equivalenceQueries(base)
	sessions := base.SampleSessions(6)
	sessions = append(sessions, []int{1 << 28}) // unknown item: Found must stay false

	for _, n := range []int{2, 3, 4, 7} {
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			sharded, err := BuildSharded(Small(), n)
			if err != nil {
				t.Fatal(err)
			}
			if got := sharded.NumShards(); got != n {
				t.Fatalf("NumShards = %d, want %d", got, n)
			}
			for _, q := range queries {
				a, b := base.Search(q, 8), sharded.Search(q, 8)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("Search(%q) differs:\nunsharded: %+v\nsharded:   %+v", q, a, b)
				}
			}
			for _, sess := range sessions {
				ra, oka := base.Recommend(sess, 5)
				rb, okb := sharded.Recommend(sess, 5)
				if oka != okb || !reflect.DeepEqual(ra, rb) {
					t.Fatalf("Recommend(%v) differs: (%v,%v) vs (%v,%v)", sess, ra, oka, rb, okb)
				}
			}
			ba := base.SearchBatch(queries, 8)
			bb := sharded.SearchBatch(queries, 8)
			if !reflect.DeepEqual(ba, bb) {
				t.Fatal("SearchBatch differs between sharded and unsharded")
			}
			qb := make([][]byte, len(queries))
			for i, q := range queries {
				qb[i] = []byte(q)
			}
			bc, err := sharded.SearchBatchBytesCtx(context.Background(), qb, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ba, bc) {
				t.Fatal("SearchBatchBytesCtx differs from string SearchBatch")
			}
			if !reflect.DeepEqual(base.RecommendBatch(sessions, 5), sharded.RecommendBatch(sessions, 5)) {
				t.Fatal("RecommendBatch differs between sharded and unsharded")
			}
			for _, name := range []string{"coat", "grill", "outdoor barbecue", "nope"} {
				if !reflect.DeepEqual(base.Hypernyms(name), sharded.Hypernyms(name)) {
					t.Fatalf("Hypernyms(%q) differs", name)
				}
				ca, oka := base.LookupConcept(name)
				cb, okb := sharded.LookupConcept(name)
				if oka != okb || !reflect.DeepEqual(ca, cb) {
					t.Fatalf("LookupConcept(%q) differs", name)
				}
			}
			if !reflect.DeepEqual(base.Stats(), sharded.Stats()) {
				t.Fatalf("Stats differ:\nunsharded %+v\nsharded   %+v", base.Stats(), sharded.Stats())
			}
			// Refreeze re-partitions into the same shard count and still
			// answers identically.
			if err := sharded.Refreeze(); err != nil {
				t.Fatal(err)
			}
			if got := sharded.NumShards(); got != n {
				t.Fatalf("NumShards after refreeze = %d, want %d", got, n)
			}
			for _, q := range queries[:8] {
				if !reflect.DeepEqual(base.Search(q, 8), sharded.Search(q, 8)) {
					t.Fatalf("Search(%q) differs after refreeze", q)
				}
			}
		})
	}
}

// TestShardedSnapshotRoundTripFacade: SaveShards -> LoadShardedFrozen
// restores a CoCo answering like the original, for both the N=1 fast path
// and a real partition.
func TestShardedSnapshotRoundTripFacade(t *testing.T) {
	c := buildSmall(t)
	queries := equivalenceQueries(c)
	sessions := c.SampleSessions(4)
	for _, n := range []int{1, 4} {
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			dir := t.TempDir()
			man, err := c.SaveShards(dir, n)
			if err != nil {
				t.Fatal(err)
			}
			if man.NumShards() != n {
				t.Fatalf("manifest has %d shards, want %d", man.NumShards(), n)
			}
			l, err := LoadShardedFrozen(dir)
			if err != nil {
				t.Fatal(err)
			}
			info := l.ServingInfo()
			if info.Source != "shards" || info.Shards != n || info.Checksum == "" {
				t.Fatalf("serving info: %+v", info)
			}
			infos := l.ShardInfos()
			if len(infos) != n {
				t.Fatalf("%d shard infos, want %d", len(infos), n)
			}
			for i, si := range infos {
				if si.Index != i || si.Checksum == "" || si.Nodes == 0 || si.Generation == 0 {
					t.Fatalf("shard info %d malformed: %+v", i, si)
				}
			}
			for _, q := range queries {
				if !reflect.DeepEqual(c.Search(q, 8), l.Search(q, 8)) {
					t.Fatalf("Search(%q) differs after round trip", q)
				}
			}
			for _, sess := range sessions {
				ra, oka := c.Recommend(sess, 5)
				rb, okb := l.Recommend(sess, 5)
				if oka != okb || !reflect.DeepEqual(ra, rb) {
					t.Fatalf("Recommend(%v) differs after round trip", sess)
				}
			}
			cs, ls := c.Stats(), l.Stats()
			if cs.Relations != ls.Relations || cs.Items != ls.Items || cs.EConcepts != ls.EConcepts {
				t.Fatalf("stats differ: %+v vs %+v", cs, ls)
			}
			ci, li := c.Items(), l.Items()
			if !reflect.DeepEqual(ci, li) {
				t.Fatal("items differ after round trip")
			}
			// Offline-only paths degrade cleanly (no live net behind shards).
			if err := l.Refreeze(); err == nil {
				t.Fatal("refreeze on shard-loaded CoCo should error")
			}
			if _, err := l.SaveShards(t.TempDir(), n); err == nil {
				t.Fatal("SaveShards on shard-loaded CoCo should error")
			}
		})
	}
}

// TestReloadShardsNoop: pointing ReloadShards at a directory whose content
// is already being served must reload nothing, keep the serving generation
// and cache stamp, and leave the query caches warm.
func TestReloadShardsNoop(t *testing.T) {
	c := buildSmall(t)
	dir := t.TempDir()
	if _, err := c.SaveShards(dir, 3); err != nil {
		t.Fatal(err)
	}
	l, err := LoadShardedFrozen(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := l.Search("outdoor barbecue", 8) // populate the search cache
	stamp := l.CacheStamp()
	gen := l.ServingInfo().Generation
	infos := l.ShardInfos()

	changed, err := l.ReloadShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 0 {
		t.Fatalf("no-op reload reported %d changed shards", changed)
	}
	if l.CacheStamp() != stamp {
		t.Fatal("no-op reload changed the cache stamp")
	}
	if g := l.ServingInfo().Generation; g != gen {
		t.Fatalf("no-op reload republished: generation %d -> %d", gen, g)
	}
	if !reflect.DeepEqual(infos, l.ShardInfos()) {
		t.Fatal("no-op reload changed shard infos")
	}
	before, _ := l.QueryCacheStats()
	if got := l.Search("outdoor barbecue", 8); !reflect.DeepEqual(got, warm) {
		t.Fatal("answer changed across no-op reload")
	}
	after, _ := l.QueryCacheStats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("cache went cold across no-op reload: hits %d -> %d", before.Hits, after.Hits)
	}
}

// TestReloadShardsDiff: after the net changes and is re-saved, ReloadShards
// re-reads exactly the shards whose checksums changed, keeps the in-memory
// form (and publication metadata) of unchanged ones, and serves the new
// content.
func TestReloadShardsDiff(t *testing.T) {
	c := buildSmall(t)
	dir := t.TempDir()
	manA, err := c.SaveShards(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	l, err := LoadShardedFrozen(dir)
	if err != nil {
		t.Fatal(err)
	}
	before := l.ShardInfos()

	// Mutate the net (inference adds relations) and overwrite the snapshot
	// directory in place — each file lands via temp-and-rename, manifest
	// last, so the directory is always loadable.
	if _, err := c.InferImplicitRelations(); err != nil {
		t.Fatal(err)
	}
	manB, err := c.SaveShards(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantChanged := 0
	for i := range manB.Shards {
		if manB.Shards[i].Checksum != manA.Shards[i].Checksum {
			wantChanged++
		}
	}
	if wantChanged == 0 {
		t.Fatal("inference did not change any shard file; test net too small?")
	}

	changed, err := l.ReloadShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if manA.MetaChecksum == manB.MetaChecksum {
		// Same shape: the diff path must reload exactly the changed shards.
		if changed != wantChanged {
			t.Fatalf("reloaded %d shards, want %d", changed, wantChanged)
		}
		after := l.ShardInfos()
		for i := range after {
			if manB.Shards[i].Checksum == manA.Shards[i].Checksum {
				if after[i].Generation != before[i].Generation || !after[i].PublishedAt.Equal(before[i].PublishedAt) {
					t.Fatalf("unchanged shard %d lost its publication metadata: %+v -> %+v", i, before[i], after[i])
				}
			} else if after[i].Generation <= before[i].Generation {
				t.Fatalf("changed shard %d did not advance: %+v -> %+v", i, before[i], after[i])
			}
		}
	} else if changed != 4 {
		t.Fatalf("shape change must fall back to a full reload, got %d", changed)
	}
	// The reloaded partition answers like the mutated net.
	for _, q := range equivalenceQueries(c) {
		if !reflect.DeepEqual(c.Search(q, 8), l.Search(q, 8)) {
			t.Fatalf("Search(%q) differs after diff reload", q)
		}
	}
}

// copyShardDir copies every file of a sharded snapshot between the two
// snapshots' resolved generation directories, manifest last (mirroring the
// writer's commit ordering).
func copyShardDir(t *testing.T, src, dst string) {
	t.Helper()
	srcLoc, err := resolveShardDir(src)
	if err != nil {
		t.Fatal(err)
	}
	dstLoc, err := resolveShardDir(dst)
	if err != nil {
		t.Fatal(err)
	}
	src, dst = srcLoc.dir, dstLoc.dir
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	cp := func(name string) {
		in, err := os.Open(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		defer in.Close()
		out, err := os.Create(filepath.Join(dst, name))
		if err != nil {
			t.Fatal(err)
		}
		defer out.Close()
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range entries {
		if e.Name() != "manifest.json" {
			cp(e.Name())
		}
	}
	cp("manifest.json")
}

// TestReloadShardUnderHammer rolls a 4-shard partition from content A to
// content B one forced shard reload at a time while query goroutines
// hammer every read path; run with -race. Requests pinned mid-roll answer
// from a consistent published state; once the roll completes, answers are
// byte-identical to a fresh load of B — including through the query
// caches, which must not leak mid-roll entries into the final state.
func TestReloadShardUnderHammer(t *testing.T) {
	c := buildSmall(t)
	dirA, dirB := t.TempDir(), t.TempDir()
	manA, err := c.SaveShards(dirA, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.InferImplicitRelations(); err != nil {
		t.Fatal(err)
	}
	manB, err := c.SaveShards(dirB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if manA.MetaChecksum != manB.MetaChecksum {
		t.Fatalf("inference changed serving metadata; per-shard roll needs a stable shape")
	}

	l, err := LoadShardedFrozen(dirA)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := LoadShardedFrozen(dirB)
	if err != nil {
		t.Fatal(err)
	}
	queries := equivalenceQueries(c)
	sessions := c.SampleSessions(4)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(i+w)%len(queries)]
				l.Search(q, 8)
				l.Recommend(sessions[(i+w)%len(sessions)], 5)
				l.Hypernyms("coat")
			}
		}(w)
	}

	// Roll the partition: drop B's files into A's directory, then force-
	// reload one shard at a time under the hammer.
	copyShardDir(t, dirB, dirA)
	for i := 0; i < manB.NumShards(); i++ {
		if err := l.ReloadShard(dirA, i); err != nil {
			t.Errorf("reload shard %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Fully rolled: serving must be indistinguishable from a fresh load of
	// B, and its content stamp must match (so only full-B cache entries
	// are live).
	if l.CacheStamp() != refB.CacheStamp() {
		t.Fatalf("stamp after roll %+v != fresh-B stamp %+v", l.CacheStamp(), refB.CacheStamp())
	}
	for _, q := range queries {
		if !reflect.DeepEqual(refB.Search(q, 8), l.Search(q, 8)) {
			t.Fatalf("Search(%q) differs from fresh-B after roll", q)
		}
	}
	for _, sess := range sessions {
		ra, oka := refB.Recommend(sess, 5)
		rb, okb := l.Recommend(sess, 5)
		if oka != okb || !reflect.DeepEqual(ra, rb) {
			t.Fatalf("Recommend(%v) differs from fresh-B after roll", sess)
		}
	}
}

// TestReloadShardValidation: forced single-shard reloads are refused when
// serving is not shard-backed, the index is out of range, or the partition
// shape on disk no longer matches serving.
func TestReloadShardValidation(t *testing.T) {
	c := buildSmall(t)
	dir := t.TempDir()
	if _, err := c.SaveShards(dir, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.ReloadShard(dir, 0); err == nil {
		t.Fatal("built (non-shard-backed) CoCo must refuse ReloadShard")
	}
	l, err := LoadShardedFrozen(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ReloadShard(dir, -1); err == nil {
		t.Fatal("negative index must be refused")
	}
	if err := l.ReloadShard(dir, 3); err == nil {
		t.Fatal("out-of-range index must be refused")
	}
	// A different partition shape on disk refuses the forced reload.
	dir2 := t.TempDir()
	if _, err := c.SaveShards(dir2, 4); err != nil {
		t.Fatal(err)
	}
	if err := l.ReloadShard(dir2, 0); err == nil {
		t.Fatal("shape change must be refused by ReloadShard")
	}
	if err := l.ReloadShard(dir, 1); err != nil {
		t.Fatalf("valid forced reload failed: %v", err)
	}
}
