package alicoco

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func buildSmall(t *testing.T) *CoCo {
	t.Helper()
	c, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildAndStats(t *testing.T) {
	c := buildSmall(t)
	s := c.Stats()
	if s.Primitives == 0 || s.EConcepts == 0 || s.Items == 0 || s.Classes == 0 {
		t.Fatalf("missing layer: %+v", s)
	}
	if len(s.PrimitivesByDomain) != 20 {
		t.Fatalf("expected 20 domains, got %d", len(s.PrimitivesByDomain))
	}
	if !strings.Contains(s.Render(), "E-commerce concepts") {
		t.Fatal("Render missing content")
	}
}

func TestFacadeSearch(t *testing.T) {
	c := buildSmall(t)
	res := c.Search("outdoor barbecue", 8)
	if len(res.Cards) == 0 {
		t.Fatal("no concept card")
	}
	if res.Cards[0].Name != "outdoor barbecue" {
		t.Fatalf("card: %q", res.Cards[0].Name)
	}
	if len(res.Cards[0].Items) == 0 {
		t.Fatal("card without items")
	}
}

func TestFacadeRecommend(t *testing.T) {
	c := buildSmall(t)
	sessions := c.SampleSessions(5)
	if len(sessions) == 0 {
		t.Fatal("no sessions")
	}
	rec, ok := c.Recommend(sessions[0], 5)
	if !ok {
		t.Fatal("no recommendation")
	}
	if !strings.HasPrefix(rec.Reason, "for ") {
		t.Fatalf("reason: %q", rec.Reason)
	}
	if len(rec.Card.Items) == 0 {
		t.Fatal("recommendation without items")
	}
}

func TestFacadeConceptLookup(t *testing.T) {
	c := buildSmall(t)
	cpt, ok := c.LookupConcept("outdoor barbecue")
	if !ok {
		t.Fatal("concept missing")
	}
	if cpt.ItemCount == 0 || len(cpt.Primitives) != 2 {
		t.Fatalf("concept malformed: %+v", cpt)
	}
	if _, ok := c.LookupConcept("no such concept"); ok {
		t.Fatal("phantom concept")
	}
}

func TestFacadeHypernymsAndGlosses(t *testing.T) {
	c := buildSmall(t)
	h := c.Hypernyms("coat")
	if len(h) == 0 {
		t.Fatal("coat should have hypernyms")
	}
	foundClothing := false
	for _, x := range h {
		if x == "clothing" {
			foundClothing = true
		}
	}
	if !foundClothing {
		t.Fatalf("coat ancestors should include clothing: %v", h)
	}
	g := c.Glosses("barbecue")
	if len(g) == 0 || !strings.Contains(g[0], "grill") {
		t.Fatalf("barbecue gloss should mention grill: %v", g)
	}
}

func TestFacadeItems(t *testing.T) {
	c := buildSmall(t)
	items := c.Items()
	if len(items) == 0 {
		t.Fatal("no items")
	}
	if items[0].Title == "" || items[0].Category == "" {
		t.Fatalf("item malformed: %+v", items[0])
	}
}

func TestFacadeConceptsList(t *testing.T) {
	c := buildSmall(t)
	cs := c.Concepts()
	if len(cs) == 0 {
		t.Fatal("no concepts")
	}
}

func TestSaveSnapshot(t *testing.T) {
	c := buildSmall(t)
	path := filepath.Join(t.TempDir(), "net.coco")
	if err := c.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		t.Fatal("snapshot not written")
	}
}

// TestFrozenSnapshotRoundTripFacade: SaveFrozen -> LoadFrozen restores a
// CoCo that answers every query path like the original, ingests a reload,
// and reports clean errors on the offline-only paths.
func TestFrozenSnapshotRoundTripFacade(t *testing.T) {
	c := buildSmall(t)
	path := filepath.Join(t.TempDir(), "net.fz")
	if err := c.SaveFrozen(path); err != nil {
		t.Fatal(err)
	}
	l, err := LoadFrozen(path)
	if err != nil {
		t.Fatal(err)
	}
	cs, ls := c.Stats(), l.Stats()
	if cs.Relations != ls.Relations || cs.Items != ls.Items || cs.EConcepts != ls.EConcepts {
		t.Fatalf("stats differ:\nbuilt  %+v\nloaded %+v", cs, ls)
	}
	cr, lr := c.Search("outdoor barbecue", 8), l.Search("outdoor barbecue", 8)
	if len(cr.Cards) == 0 || len(cr.Cards) != len(lr.Cards) || cr.Cards[0].Name != lr.Cards[0].Name {
		t.Fatalf("search differs: %+v vs %+v", cr.Cards, lr.Cards)
	}
	if len(cr.Cards[0].Items) != len(lr.Cards[0].Items) {
		t.Fatal("card items differ")
	}
	ci, li := c.Items(), l.Items()
	if len(ci) != len(li) || ci[0] != li[0] {
		t.Fatalf("items differ: %d vs %d", len(ci), len(li))
	}
	sessions := c.SampleSessions(3)
	for _, sess := range sessions {
		crec, cok := c.Recommend(sess, 5)
		lrec, lok := l.Recommend(sess, 5)
		if cok != lok || crec.Reason != lrec.Reason || len(crec.Card.Items) != len(lrec.Card.Items) {
			t.Fatalf("recommendation differs for %v", sess)
		}
	}
	if h := l.Hypernyms("coat"); len(h) == 0 {
		t.Fatal("loaded net lost hypernyms")
	}
	// Offline-only paths degrade cleanly on a snapshot-loaded CoCo.
	if l.SampleSessions(1) != nil {
		t.Fatal("snapshot-loaded CoCo should have no sessions")
	}
	if l.Glosses("barbecue") != nil {
		t.Fatal("snapshot-loaded CoCo should have no glosses")
	}
	if _, err := l.InferImplicitRelations(); err == nil {
		t.Fatal("infer on snapshot-loaded CoCo should error")
	}
	if err := l.Refreeze(); err == nil {
		t.Fatal("refreeze on snapshot-loaded CoCo should error")
	}
	if err := l.SaveSnapshot(filepath.Join(t.TempDir(), "x.coco")); err == nil {
		t.Fatal("legacy snapshot of snapshot-loaded CoCo should error")
	}
	// But the frozen snapshot itself can be re-saved and reloaded.
	path2 := filepath.Join(t.TempDir(), "net2.fz")
	if err := l.SaveFrozen(path2); err != nil {
		t.Fatal(err)
	}
	if err := l.ReloadFrozen(path2); err != nil {
		t.Fatal(err)
	}
	if res := l.Search("outdoor barbecue", 8); len(res.Cards) == 0 {
		t.Fatal("no card after reload")
	}
}

func TestLoadFrozenRejectsMissingAndCorrupt(t *testing.T) {
	if _, err := LoadFrozen(filepath.Join(t.TempDir(), "missing.fz")); err == nil {
		t.Fatal("missing file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.fz")
	if err := os.WriteFile(bad, []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFrozen(bad); err == nil {
		t.Fatal("corrupt file should error")
	}
}

func TestWorldDomains(t *testing.T) {
	if len(WorldDomains()) != 20 {
		t.Fatal("paper defines 20 domains")
	}
}

func TestInferImplicitRelations(t *testing.T) {
	c := buildSmall(t)
	rels, err := c.InferImplicitRelations()
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) == 0 {
		t.Fatal("no implied relations")
	}
	for _, r := range rels {
		if r.Concept == "" || !strings.Contains(r.Primitive, ":") || r.Lift < 1 {
			t.Fatalf("malformed relation: %+v", r)
		}
	}
}

// TestConcurrentServeDuringRefreeze drives queries while inference
// re-freezes and swaps the serving snapshot; run with -race to prove the
// atomic swap is sound.
func TestConcurrentServeDuringRefreeze(t *testing.T) {
	c := buildSmall(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := c.InferImplicitRelations(); err != nil {
			t.Error(err)
		}
	}()
	for i := 0; i < 200; i++ {
		c.Search("outdoor barbecue", 5)
		c.Hypernyms("coat")
		c.LookupConcept("outdoor barbecue")
	}
	<-done
	// After the swap, serving still answers.
	if res := c.Search("outdoor barbecue", 5); len(res.Cards) == 0 {
		t.Fatal("no card after refreeze")
	}
}
